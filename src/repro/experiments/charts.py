"""Plain-text rendering of figure series.

The paper presents its evaluation as line charts; this module renders the
same series as terminal-friendly ASCII charts so the benchmark harness
and examples can show each figure's *shape* (who is above whom, where
curves converge) without a plotting dependency.

The x axis is the relative cache size on a log scale, matching the
paper's figures.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

_MARKERS = "ox*+#@%&"


def render_ascii_chart(
    series: Dict[str, List[Tuple[float, float]]],
    title: str = "",
    width: int = 60,
    height: int = 16,
    y_label: str = "",
) -> str:
    """Render per-scheme (x, y) series as an ASCII chart.

    ``series`` is the output of
    :func:`repro.experiments.tables.figure_series`.  X values must be
    positive (they are plotted on a log scale).  Returns a multi-line
    string; schemes get distinct point markers, listed in the legend.
    """
    if not series:
        raise ValueError("nothing to plot")
    if width < 10 or height < 4:
        raise ValueError("chart too small")
    points = [(x, y) for values in series.values() for x, y in values]
    if not points:
        raise ValueError("series contain no points")
    if any(x <= 0 for x, _ in points):
        raise ValueError("x values must be positive (log scale)")

    xs = [math.log10(x) for x, _ in points]
    ys = [y for _, y in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = x_max - x_min or 1.0
    y_span = y_max - y_min or 1.0

    grid = [[" "] * width for _ in range(height)]
    for marker, (name, values) in zip(_MARKERS, sorted(series.items())):
        for x, y in values:
            col = round((math.log10(x) - x_min) / x_span * (width - 1))
            row = round((y - y_min) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.4g}"
    bottom_label = f"{y_min:.4g}"
    label_width = max(len(top_label), len(bottom_label), len(y_label))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(label_width)
        elif i == height - 1:
            prefix = bottom_label.rjust(label_width)
        elif i == height // 2 and y_label:
            prefix = y_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    x_left = f"{10 ** x_min:.3g}"
    x_right = f"{10 ** x_max:.3g}"
    axis = " " * label_width + " +" + "-" * width
    xticks = (
        " " * (label_width + 2)
        + x_left
        + " " * max(1, width - len(x_left) - len(x_right))
        + x_right
    )
    lines.append(axis)
    lines.append(xticks)
    lines.append(" " * (label_width + 2) + "relative cache size (log scale)")
    legend = "  ".join(
        f"{marker}={name}"
        for marker, (name, _) in zip(_MARKERS, sorted(series.items()))
    )
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)


def render_figure(
    points: Sequence,
    metric: str,
    title: str = "",
    width: int = 60,
    height: int = 16,
) -> str:
    """Convenience wrapper: sweep points -> ASCII chart of one metric."""
    from repro.experiments.tables import figure_series

    series = figure_series(points, metric)
    return render_ascii_chart(
        series, title=title, width=width, height=height, y_label=metric
    )
