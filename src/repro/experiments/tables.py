"""Tabulation of experiment results in the paper's shapes.

* :func:`topology_characteristics` / :func:`format_table1` regenerate
  Table 1 (en-route system parameters).
* :func:`figure_series` turns sweep points into the (x, y) series of one
  figure panel; :func:`format_sweep_table` renders sweep results as the
  text table the benchmark harness prints.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.experiments.sweeps import SweepPoint
from repro.metrics.collector import MetricsSummary
from repro.sim.architecture import Architecture
from repro.topology.graph import NodeKind

# Metric accessor registry: figure panels select series by these names.
METRIC_ACCESSORS = {
    "latency": lambda s: s.mean_latency,
    "response_ratio": lambda s: s.mean_response_ratio,
    "byte_hit_ratio": lambda s: s.byte_hit_ratio,
    "hit_ratio": lambda s: s.hit_ratio,
    "traffic": lambda s: s.mean_traffic_byte_hops,
    "hops": lambda s: s.mean_hops,
    "cache_load": lambda s: s.mean_cache_load,
    "read_load": lambda s: s.mean_read_load,
    "write_load": lambda s: s.mean_write_load,
    "latency_p50": lambda s: s.latency_percentiles[0],
    "latency_p90": lambda s: s.latency_percentiles[1],
    "latency_p99": lambda s: s.latency_percentiles[2],
}


def metric_value(summary: MetricsSummary, metric: str) -> float:
    """Look up one metric by registry name."""
    try:
        accessor = METRIC_ACCESSORS[metric]
    except KeyError:
        raise ValueError(
            f"unknown metric {metric!r}; expected one of {sorted(METRIC_ACCESSORS)}"
        ) from None
    return accessor(summary)


def topology_characteristics(architecture: Architecture) -> Dict[str, float]:
    """The quantities reported in Table 1 for an en-route topology."""
    network = architecture.network
    return {
        "total_nodes": network.num_nodes,
        "wan_nodes": len(network.nodes_of_kind(NodeKind.WAN)),
        "man_nodes": len(network.nodes_of_kind(NodeKind.MAN)),
        "links": network.num_links,
        "avg_wan_link_delay": network.mean_delay([NodeKind.WAN]),
        "avg_man_link_delay": network.mean_delay([NodeKind.MAN]),
        "avg_path_hops": architecture.mean_client_server_hops(),
    }


def format_table1(characteristics: Dict[str, float]) -> str:
    """Render Table 1 ('System Parameters for En-Route Architecture')."""
    rows = [
        ("Total number of nodes", f"{characteristics['total_nodes']:.0f}"),
        ("Number of WAN nodes", f"{characteristics['wan_nodes']:.0f}"),
        ("Number of MAN nodes", f"{characteristics['man_nodes']:.0f}"),
        ("Number of network links", f"{characteristics['links']:.0f}"),
        (
            "Average delay of WAN links",
            f"{characteristics['avg_wan_link_delay']:.3f} second",
        ),
        (
            "Average delay of MAN links",
            f"{characteristics['avg_man_link_delay']:.3f} second",
        ),
        ("Average path length (hops)", f"{characteristics['avg_path_hops']:.1f}"),
    ]
    width = max(len(name) for name, _ in rows)
    lines = [f"{name:<{width}}  {value}" for name, value in rows]
    return "\n".join(lines)


def figure_series(
    points: Sequence[SweepPoint], metric: str
) -> Dict[str, List[Tuple[float, float]]]:
    """Per-scheme (cache size, metric) series, sorted by cache size."""
    series: Dict[str, List[Tuple[float, float]]] = {}
    for point in points:
        series.setdefault(point.scheme, []).append(
            (point.relative_cache_size, metric_value(point.summary, metric))
        )
    for values in series.values():
        values.sort()
    return series


def format_sweep_table(
    points: Sequence[SweepPoint],
    metrics: Sequence[str],
    title: str = "",
) -> str:
    """Render sweep points as a fixed-width text table, one row per point.

    Provisioning-sweep points (``point.provision``) get their capacity
    profile appended to the scheme label, e.g. ``coordinated[edge-heavy]``,
    so joint sizing grids stay readable next to uniform rows.
    """
    header = ["scheme", "cache%"] + list(metrics)
    rows: List[List[str]] = []

    def label(point: SweepPoint) -> str:
        profile = (point.provision or {}).get("profile")
        return f"{point.scheme}[{profile}]" if profile else point.scheme

    ordered = sorted(points, key=lambda p: (label(p), p.relative_cache_size))
    for point in ordered:
        row = [label(point), f"{100 * point.relative_cache_size:g}"]
        row.extend(
            f"{metric_value(point.summary, metric):.6g}" for metric in metrics
        )
        rows.append(row)
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
