"""Execution layer for experiment grids.

The figure-regenerating sweeps are embarrassingly parallel grids of
(scheme, configuration) points over one shared trace and architecture.
This module runs such grids fast, resumably and observably:

* **Per-worker state reuse.**  With ``workers > 1`` the architecture,
  trace and catalog are shipped to each worker process exactly **once**
  through the pool initializer; the per-point work items crossing the
  pipe afterwards are tiny :class:`GridTask` tuples.  (The previous
  design re-pickled the full trace for every grid point.)

* **Checkpointing.**  With a ``checkpoint_path``, every completed point
  is appended to a JSONL checkpoint the moment it finishes (see
  :mod:`repro.experiments.results_io`).  A killed sweep restarted with
  ``resume=True`` loads the checkpoint and re-executes only the missing
  points.

* **Observability.**  Each point produces a :class:`RunRecord` (scheme,
  size, wall-clock duration, throughput, worker id) and fires a
  :class:`ProgressEvent` through the optional ``progress`` callback, so
  long grids report liveness and leave a structured account of where the
  time went.

:func:`run_grid` is the engine; the public sweep fronts in
:mod:`repro.experiments.sweeps` and the multi-seed harness in
:mod:`repro.experiments.robustness` are built on it.
"""

from __future__ import annotations

import dataclasses
import json
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.costs.model import LatencyCostModel
from repro.experiments.points import SweepPoint
from repro.experiments.results_io import CheckpointWriter, load_checkpoint
from repro.obs.instruments import Instruments
from repro.obs.registry import StatRegistry
from repro.sim.architecture import Architecture
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.factory import build_scheme
from repro.verify.auditor import AuditConfig, Auditor
from repro.workload.catalog import ObjectCatalog
from repro.workload.trace import Trace


@dataclass(frozen=True)
class GridTask:
    """One grid point: a scheme name, a config and extra scheme params.

    Deliberately tiny -- this is all that crosses the process-pool pipe
    per point; the heavy shared state travels via the pool initializer.
    """

    scheme: str
    config: SimulationConfig
    params: Dict[str, object] = field(default_factory=dict)

    def key(self, architecture_name: str) -> str:
        """Stable checkpoint identity of this point on one architecture."""
        return json.dumps(
            {
                "architecture": architecture_name,
                "scheme": self.scheme,
                "relative_cache_size": self.config.relative_cache_size,
                "dcache_ratio": self.config.dcache_ratio,
                "warmup_fraction": self.config.warmup_fraction,
                "params": {k: self.params[k] for k in sorted(self.params)},
            },
            sort_keys=True,
        )


@dataclass(frozen=True)
class RunRecord:
    """Observability record of one executed (or reused) grid point.

    ``audit_checks`` / ``audit_violations`` are populated only on audited
    runs (``audit=True``): the number of audit checks executed and the
    structured :meth:`~repro.verify.violations.AuditViolation.to_dict`
    records of every violation found -- these land verbatim in the
    checkpoint / run-record sidecars so a grid's correctness evidence
    survives alongside its metrics.

    ``node_stats`` is ``None`` unless the point ran with the per-node
    stat registry attached (``node_stats=True``): the final
    ``{node: counters}`` snapshot (JSON keys, so node ids are strings),
    persisted in the same sidecars so a grid's per-node behavior
    survives alongside its metrics.
    """

    key: str
    scheme: str
    relative_cache_size: float
    duration_seconds: float
    requests: int
    requests_per_second: float
    worker: int
    reused: bool = False
    audit_checks: int = 0
    audit_violations: Tuple[dict, ...] = ()
    node_stats: Optional[dict] = None

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "scheme": self.scheme,
            "relative_cache_size": self.relative_cache_size,
            "duration_seconds": self.duration_seconds,
            "requests": self.requests,
            "requests_per_second": self.requests_per_second,
            "worker": self.worker,
            "reused": self.reused,
            "audit_checks": self.audit_checks,
            "audit_violations": [dict(v) for v in self.audit_violations],
            "node_stats": self.node_stats,
        }

    @classmethod
    def from_dict(cls, raw: dict, *, reused: bool | None = None) -> "RunRecord":
        violations = raw.get("audit_violations", ())
        if not isinstance(violations, (list, tuple)):
            violations = ()
        node_stats = raw.get("node_stats")
        return cls(
            key=raw.get("key", ""),
            scheme=raw.get("scheme", ""),
            relative_cache_size=float(raw.get("relative_cache_size", 0.0)),
            duration_seconds=float(raw.get("duration_seconds", 0.0)),
            requests=int(raw.get("requests", 0)),
            requests_per_second=float(raw.get("requests_per_second", 0.0)),
            worker=int(raw.get("worker", 0)),
            reused=raw.get("reused", False) if reused is None else reused,
            audit_checks=int(raw.get("audit_checks", 0)),
            audit_violations=tuple(
                dict(v) for v in violations if isinstance(v, dict)
            ),
            node_stats=dict(node_stats) if isinstance(node_stats, dict) else None,
        )


@dataclass(frozen=True)
class ProgressEvent:
    """Fired through the ``progress`` callback once per finished point."""

    completed: int
    total: int
    record: RunRecord

    @property
    def reused(self) -> bool:
        return self.record.reused

    def format(self) -> str:
        """One human-readable progress line (used by the CLI)."""
        status = "reused" if self.record.reused else (
            f"{self.record.duration_seconds:.1f}s, "
            f"{self.record.requests_per_second:,.0f} req/s"
        )
        return (
            f"[{self.completed}/{self.total}] {self.record.scheme} "
            f"@ {self.record.relative_cache_size:g} ({status})"
        )


@dataclass(frozen=True)
class GridResult:
    """Everything :func:`run_grid` produces for one grid."""

    points: List[SweepPoint]
    records: List[RunRecord]

    @property
    def executed_count(self) -> int:
        return sum(1 for r in self.records if not r.reused)

    @property
    def reused_count(self) -> int:
        return sum(1 for r in self.records if r.reused)

    @property
    def total_duration_seconds(self) -> float:
        """Summed single-point wall-clock time (CPU-side, not elapsed)."""
        return sum(r.duration_seconds for r in self.records if not r.reused)


def execute_point(
    architecture: Architecture,
    trace: Trace,
    catalog: ObjectCatalog,
    task: GridTask,
    audit: Union[bool, AuditConfig] = False,
    node_stats: bool = False,
    instruments: Optional[Instruments] = None,
    interval_collector=None,
    updates: Sequence = (),
    coherency=None,
) -> Tuple[SweepPoint, RunRecord]:
    """Run one grid point in this process; returns its point and record.

    ``audit`` enables the correctness audit layer for the point: ``True``
    uses a collecting (non-strict) :class:`~repro.verify.auditor.
    AuditConfig`; pass a config instance for full control.  Audited
    points run with the ``mirrored`` NCL structure (where the scheme has
    one) so every eviction decision is differentially checked -- the
    overlay happens *after* the checkpoint key is computed, so audited
    and unaudited grids share checkpoint identities (and metrics, which
    auditing never changes).

    ``node_stats`` attaches a fresh per-node stat registry (see
    :mod:`repro.obs`) and stores its final snapshot on the record;
    ``instruments`` passes a fully-configured bundle instead (e.g. with
    a probe or timers -- ``node_stats`` is then implied by whether the
    bundle carries a registry).  ``interval_collector`` is forwarded to
    :meth:`SimulationEngine.run` verbatim.  All three are observational
    only -- metrics and checkpoint identities are unchanged.

    ``updates`` threads a time-ordered update-event stream (per-object
    or group-targeted) through the replay, and ``coherency`` -- a
    :class:`~repro.coherency.config.CoherencyConfig` -- selects how
    those updates reach the caches (in-band broadcast vs. pub/sub
    channel).  With a coherency config the point's accounting lands on
    ``SweepPoint.coherency``; without one the engine keeps its implicit
    in-band behavior and surfaces nothing, bit-identical to before the
    seam existed.  Checkpoint identities deliberately ignore both --
    the update stream is an input, not a grid axis.

    Provisioning points (``repro sweep --provision``) carry a
    ``level_multipliers`` param -- JSON-keyed ``{level: multiplier}`` --
    which IS part of the checkpoint key (it is a grid axis).  It is
    translated here into per-node ``capacity_overrides`` via
    :func:`~repro.sim.architecture.level_capacity_overrides`, preserving
    the total capacity budget, and echoed on ``SweepPoint.provision``
    (with the optional ``provision_profile`` label) so downstream
    consumers can separate sizing profiles from uniform runs.
    """
    config = task.config
    key = task.key(architecture.name)
    cost_model = LatencyCostModel(architecture.network, catalog.mean_size)
    capacity = config.capacity_bytes(catalog.total_bytes)
    dcache_entries = config.dcache_entries(catalog.total_bytes, catalog.mean_size)
    params = dict(task.params)
    provision = None
    multipliers = params.pop("level_multipliers", None)
    profile = params.pop("provision_profile", None)
    if multipliers is not None:
        from repro.sim.architecture import level_capacity_overrides

        params["capacity_overrides"] = level_capacity_overrides(
            architecture.network,
            capacity,
            {int(level): float(m) for level, m in multipliers.items()},
        )
        provision = {
            "level_multipliers": {
                str(level): float(m) for level, m in multipliers.items()
            }
        }
        if profile is not None:
            provision["profile"] = profile
    auditor = None
    if audit:
        audit_config = (
            audit if isinstance(audit, AuditConfig) else AuditConfig(strict=False)
        )
        auditor = Auditor(audit_config)
        params.setdefault("ncl_structure", "mirrored")
    if instruments is None and node_stats:
        instruments = Instruments(registry=StatRegistry())
    policy = None
    if coherency is not None:
        from repro.coherency.policy import build_policy

        policy = build_policy(coherency, catalog.num_objects)
    scheme = build_scheme(
        task.scheme, cost_model, capacity, dcache_entries, **params
    )
    engine = SimulationEngine(
        architecture, cost_model, scheme, warmup_fraction=config.warmup_fraction
    )
    result = engine.run(
        trace,
        updates=updates,
        auditor=auditor,
        instruments=instruments,
        interval_collector=interval_collector,
        coherency=policy,
    )
    if auditor is not None and auditor.config.shadow_replay:
        from repro.verify.replay import shadow_replay_violations

        shadow_scheme = build_scheme(
            task.scheme, cost_model, capacity, dcache_entries, **params
        )
        auditor.checks_run["shadow-replay"] = len(auditor.outcome_signatures)
        auditor.extend(
            shadow_replay_violations(
                architecture, shadow_scheme, trace, auditor.outcome_signatures
            )
        )
        result = dataclasses.replace(result, audit=auditor.report())
    point = SweepPoint(
        architecture=architecture.name,
        scheme=scheme.name,
        relative_cache_size=config.relative_cache_size,
        summary=result.summary,
        coherency=result.coherency,
        provision=provision,
    )
    record = RunRecord(
        key=key,
        scheme=scheme.name,
        relative_cache_size=config.relative_cache_size,
        duration_seconds=result.duration_seconds,
        requests=result.requests_total,
        requests_per_second=result.requests_per_second,
        worker=os.getpid(),
        audit_checks=result.audit.total_checks if result.audit else 0,
        audit_violations=tuple(
            v.to_dict() for v in (result.audit.violations if result.audit else ())
        ),
        node_stats=(
            {str(node): stats for node, stats in result.node_stats.items()}
            if result.node_stats is not None
            else None
        ),
    )
    return point, record


# -- process-pool plumbing --------------------------------------------------

# Shared state installed once per worker process by the pool initializer;
# the per-task payload is then just the GridTask itself.
_WORKER_STATE: Optional[
    Tuple[Architecture, Trace, ObjectCatalog, Union[bool, AuditConfig], bool]
] = None


def _init_worker(
    architecture: Architecture,
    trace: Trace,
    catalog: ObjectCatalog,
    audit: Union[bool, AuditConfig] = False,
    node_stats: bool = False,
) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (architecture, trace, catalog, audit, node_stats)


def _run_pooled(task: GridTask) -> Tuple[SweepPoint, RunRecord]:
    if _WORKER_STATE is None:  # pragma: no cover - defensive
        raise RuntimeError("worker used without initializer")
    architecture, trace, catalog, audit, node_stats = _WORKER_STATE
    return execute_point(
        architecture, trace, catalog, task, audit=audit, node_stats=node_stats
    )


def run_grid(
    architecture: Architecture,
    trace: Trace,
    catalog: ObjectCatalog,
    tasks: Sequence[GridTask],
    workers: int = 1,
    checkpoint_path: str | Path | None = None,
    resume: bool = False,
    progress: Optional[Callable[[ProgressEvent], None]] = None,
    audit: Union[bool, AuditConfig] = False,
    node_stats: bool = False,
) -> GridResult:
    """Execute a grid of tasks; returns points in task order.

    ``workers > 1`` fans the grid out over a process pool whose workers
    receive the (architecture, trace, catalog) state once, at pool
    start-up.  Points are independent and fully deterministic, so the
    result is identical to the sequential run regardless of worker count
    or completion order.

    ``checkpoint_path`` streams every finished point to a JSONL file;
    with ``resume=True`` points already present there are *not*
    re-executed -- their stored summaries are returned (records flagged
    ``reused=True``) and only the missing grid points run.  Without
    ``resume`` an existing checkpoint is overwritten.

    ``progress`` receives one :class:`ProgressEvent` per finished point
    (reused points first, then live completions as they land).

    ``audit`` threads the correctness audit layer through every executed
    point (see :func:`execute_point`); violations surface as structured
    ``audit_violations`` entries on each point's :class:`RunRecord` and
    in the checkpoint sidecar.  Reused checkpoint points are *not*
    re-audited -- their records keep whatever audit evidence the original
    execution stored.

    ``node_stats`` attaches the per-node stat registry to every executed
    point; each record (and checkpoint sidecar entry) then carries the
    final ``{node: counters}`` snapshot.  Like auditing, this never
    changes metrics or checkpoint identities, and reused points keep
    whatever snapshot (or ``None``) their original execution stored.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    tasks = list(tasks)
    keys = [task.key(architecture.name) for task in tasks]
    if len(set(keys)) != len(keys):
        duplicates = sorted({k for k in keys if keys.count(k) > 1})
        raise ValueError(f"duplicate grid tasks: {duplicates[:3]}")

    done: Dict[str, Tuple[SweepPoint, dict]] = {}
    if resume and checkpoint_path is not None:
        done = load_checkpoint(checkpoint_path)

    points: List[Optional[SweepPoint]] = [None] * len(tasks)
    records: List[Optional[RunRecord]] = [None] * len(tasks)
    total = len(tasks)
    completed = 0

    # Reused points surface first, in task order.
    pending: List[int] = []
    for index, key in enumerate(keys):
        if key in done:
            point, raw_record = done[key]
            points[index] = point
            records[index] = RunRecord.from_dict(
                {**raw_record, "key": key}, reused=True
            )
            completed += 1
            if progress is not None:
                progress(ProgressEvent(completed, total, records[index]))
        else:
            pending.append(index)

    writer = (
        CheckpointWriter(checkpoint_path, resume=resume)
        if checkpoint_path is not None
        else None
    )
    try:
        def finish(index: int, point: SweepPoint, record: RunRecord) -> None:
            nonlocal completed
            points[index] = point
            records[index] = record
            completed += 1
            if writer is not None:
                writer.write(keys[index], point, record.to_dict())
            if progress is not None:
                progress(ProgressEvent(completed, total, record))

        if workers == 1 or len(pending) <= 1:
            for index in pending:
                point, record = execute_point(
                    architecture,
                    trace,
                    catalog,
                    tasks[index],
                    audit=audit,
                    node_stats=node_stats,
                )
                finish(index, point, record)
        else:
            pool_size = min(workers, len(pending))
            with ProcessPoolExecutor(
                max_workers=pool_size,
                initializer=_init_worker,
                initargs=(architecture, trace, catalog, audit, node_stats),
            ) as executor:
                futures = {
                    executor.submit(_run_pooled, tasks[index]): index
                    for index in pending
                }
                for future in as_completed(futures):
                    point, record = future.result()
                    finish(futures[future], point, record)
    finally:
        if writer is not None:
            writer.close()

    assert all(p is not None for p in points)
    return GridResult(points=list(points), records=list(records))
