"""The sweep-point result type shared by the experiment layers.

Lives in its own leaf module so the serialization layer
(:mod:`repro.experiments.results_io`), the execution layer
(:mod:`repro.experiments.runner`) and the sweep front-ends
(:mod:`repro.experiments.sweeps`) can all depend on it without import
cycles.  Most code imports it from :mod:`repro.experiments.sweeps`,
which re-exports it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.metrics.collector import MetricsSummary


@dataclass(frozen=True)
class SweepPoint:
    """One (scheme, cache size) measurement.

    ``coherency`` is ``None`` unless the point ran with an explicit
    coherency policy (see :mod:`repro.coherency`): the policy's
    accounting dict, carried through results JSON so the warehouse can
    compare in-band vs. channel runs.

    ``provision`` is ``None`` for uniformly sized runs; a provisioning
    sweep (``repro sweep --provision``) records the capacity profile it
    applied, e.g. ``{"profile": "edge-heavy", "level_multipliers":
    {"0": 0.5, "1": 1.0, "2": 2.0}}`` -- the total budget is unchanged,
    only its split across tree levels (see
    :func:`repro.sim.architecture.level_capacity_overrides`).
    """

    architecture: str
    scheme: str
    relative_cache_size: float
    summary: MetricsSummary
    coherency: Optional[dict] = None
    provision: Optional[dict] = None
