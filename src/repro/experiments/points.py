"""The sweep-point result type shared by the experiment layers.

Lives in its own leaf module so the serialization layer
(:mod:`repro.experiments.results_io`), the execution layer
(:mod:`repro.experiments.runner`) and the sweep front-ends
(:mod:`repro.experiments.sweeps`) can all depend on it without import
cycles.  Most code imports it from :mod:`repro.experiments.sweeps`,
which re-exports it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.collector import MetricsSummary


@dataclass(frozen=True)
class SweepPoint:
    """One (scheme, cache size) measurement."""

    architecture: str
    scheme: str
    relative_cache_size: float
    summary: MetricsSummary
