"""Parameter sweeps regenerating the paper's figures.

``run_cache_size_sweep`` is the workhorse behind Figures 6-10: it replays
one trace against every (scheme, relative cache size) combination on one
architecture and returns the resulting metric summaries.
``run_modulo_radius_sweep`` backs the cache-radius ablation discussed in
sections 4.1-4.2.

Both are thin fronts over :func:`repro.experiments.runner.run_grid`,
which provides process-pool parallelism with per-worker state reuse,
checkpoint/resume, and per-point run records (see
:mod:`repro.experiments.runner`).
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.experiments.points import SweepPoint
from repro.experiments.runner import (
    GridTask,
    ProgressEvent,
    execute_point,
    run_grid,
)
from repro.sim.architecture import Architecture
from repro.sim.config import SimulationConfig
from repro.workload.catalog import ObjectCatalog
from repro.workload.trace import Trace

__all__ = [
    "SweepPoint",
    "PROVISION_PROFILES",
    "run_single",
    "run_cache_size_sweep",
    "run_modulo_radius_sweep",
    "run_provisioning_sweep",
]

# Budget-preserving capacity profiles for the joint sizing sweep
# (Araldo-style provisioning axis).  Multipliers are JSON-keyed by tree
# level (level 0 is the root/server side) and renormalized per
# architecture so every profile installs the same total capacity; see
# repro.sim.architecture.level_capacity_overrides.
PROVISION_PROFILES: Dict[str, Dict[str, float]] = {
    "uniform": {},
    "root-heavy": {"0": 3.0, "1": 1.5},
    "edge-heavy": {"0": 0.5, "1": 1.0, "2": 2.0, "3": 3.0},
}


def run_single(
    architecture: Architecture,
    trace: Trace,
    catalog: ObjectCatalog,
    scheme_name: str,
    config: SimulationConfig,
    **scheme_params,
) -> SweepPoint:
    """Run one scheme at one cache size and return its sweep point."""
    point, _ = execute_point(
        architecture,
        trace,
        catalog,
        GridTask(scheme=scheme_name, config=config, params=dict(scheme_params)),
    )
    return point


def run_cache_size_sweep(
    architecture: Architecture,
    trace: Trace,
    catalog: ObjectCatalog,
    scheme_names: Sequence[str],
    cache_sizes: Iterable[float],
    dcache_ratio: float = 3.0,
    warmup_fraction: float = 0.5,
    scheme_params: Dict[str, Dict] | None = None,
    workers: int = 1,
    checkpoint_path: str | Path | None = None,
    resume: bool = False,
    progress: Optional[Callable[[ProgressEvent], None]] = None,
    audit: bool = False,
    node_stats: bool = False,
) -> List[SweepPoint]:
    """Sweep relative cache size for several schemes over one trace.

    ``scheme_params`` maps scheme name to extra keyword arguments (e.g.
    ``{"modulo": {"radius": 4}}``).  Every point replays the same trace on
    fresh caches, exactly as the paper compares schemes.

    ``workers > 1`` fans the (scheme, size) grid out over a process pool;
    points are independent, so results are identical to the sequential
    run (and returned in the same deterministic order) at a fraction of
    the wall-clock time.  The shared trace/architecture state is shipped
    to each worker once, at pool start-up.

    ``checkpoint_path`` streams finished points to a JSONL checkpoint;
    pass ``resume=True`` to skip points already recorded there (the
    recovery path after a killed sweep).  ``progress`` receives one
    :class:`~repro.experiments.runner.ProgressEvent` per finished point.

    ``audit`` runs every point under the correctness audit layer (see
    :mod:`repro.verify`); violations become structured entries on the
    run records without changing any metric.  ``node_stats`` attaches
    the per-node stat registry (see :mod:`repro.obs`) to every executed
    point -- the snapshots land on the run records and in the
    checkpoint sidecar, also without changing any metric.
    """
    params = scheme_params or {}
    tasks = []
    for size in cache_sizes:
        config = SimulationConfig(
            relative_cache_size=size,
            dcache_ratio=dcache_ratio,
            warmup_fraction=warmup_fraction,
        )
        for name in scheme_names:
            tasks.append(
                GridTask(scheme=name, config=config, params=params.get(name, {}))
            )
    result = run_grid(
        architecture,
        trace,
        catalog,
        tasks,
        workers=workers,
        checkpoint_path=checkpoint_path,
        resume=resume,
        progress=progress,
        audit=audit,
        node_stats=node_stats,
    )
    return result.points


def run_provisioning_sweep(
    architecture: Architecture,
    trace: Trace,
    catalog: ObjectCatalog,
    scheme_names: Sequence[str],
    cache_sizes: Iterable[float],
    profiles: Dict[str, Dict[str, float]] | None = None,
    dcache_ratio: float = 3.0,
    warmup_fraction: float = 0.5,
    scheme_params: Dict[str, Dict] | None = None,
    workers: int = 1,
    checkpoint_path: str | Path | None = None,
    resume: bool = False,
    progress: Optional[Callable[[ProgressEvent], None]] = None,
    audit: bool = False,
    node_stats: bool = False,
) -> List[SweepPoint]:
    """Joint cache-sizing sweep: (scheme, size, capacity profile) grid.

    For every scheme and relative cache size, the same total capacity
    budget is re-split across tree levels according to each profile in
    ``profiles`` (default :data:`PROVISION_PROFILES`), so the sweep
    isolates *where* capacity lives from *how much* there is -- the
    provisioning axis of the cost-aware scheme [Araldo et al.,
    PAPERS.md].  The ``"uniform"`` profile (empty multipliers) runs with
    no overrides at all, bit-identical to the plain cache-size sweep, so
    provisioned and fixed-size points land comparably in the warehouse.

    Each point's :attr:`SweepPoint.provision` records the profile name
    and multipliers (``None`` for uniform); parallelism, checkpointing
    and auditing follow :func:`run_cache_size_sweep`'s contract.
    """
    params = scheme_params or {}
    profiles = dict(profiles) if profiles is not None else dict(PROVISION_PROFILES)
    if not profiles:
        raise ValueError("provisioning sweep needs at least one profile")
    tasks = []
    for size in cache_sizes:
        config = SimulationConfig(
            relative_cache_size=size,
            dcache_ratio=dcache_ratio,
            warmup_fraction=warmup_fraction,
        )
        for profile_name, multipliers in profiles.items():
            for name in scheme_names:
                task_params = dict(params.get(name, {}))
                if multipliers:
                    task_params["level_multipliers"] = {
                        str(level): float(m) for level, m in multipliers.items()
                    }
                    task_params["provision_profile"] = profile_name
                tasks.append(
                    GridTask(scheme=name, config=config, params=task_params)
                )
    result = run_grid(
        architecture,
        trace,
        catalog,
        tasks,
        workers=workers,
        checkpoint_path=checkpoint_path,
        resume=resume,
        progress=progress,
        audit=audit,
        node_stats=node_stats,
    )
    return result.points


def run_modulo_radius_sweep(
    architecture: Architecture,
    trace: Trace,
    catalog: ObjectCatalog,
    radii: Iterable[int],
    relative_cache_size: float,
    dcache_ratio: float = 3.0,
    warmup_fraction: float = 0.5,
    workers: int = 1,
    checkpoint_path: str | Path | None = None,
    resume: bool = False,
    progress: Optional[Callable[[ProgressEvent], None]] = None,
    audit: bool = False,
    node_stats: bool = False,
) -> List[SweepPoint]:
    """The MODULO cache-radius ablation (paper sections 4.1-4.2).

    ``dcache_ratio`` is threaded through for parity with
    :func:`run_cache_size_sweep` (MODULO itself holds no descriptors, but
    the config is part of each point's checkpoint identity); parallelism,
    checkpoint/resume and progress reporting follow the same contract.
    """
    config = SimulationConfig(
        relative_cache_size=relative_cache_size,
        dcache_ratio=dcache_ratio,
        warmup_fraction=warmup_fraction,
    )
    tasks = [
        GridTask(scheme="modulo", config=config, params={"radius": radius})
        for radius in radii
    ]
    result = run_grid(
        architecture,
        trace,
        catalog,
        tasks,
        workers=workers,
        checkpoint_path=checkpoint_path,
        resume=resume,
        progress=progress,
        audit=audit,
        node_stats=node_stats,
    )
    return result.points
