"""Parameter sweeps regenerating the paper's figures.

``run_cache_size_sweep`` is the workhorse behind Figures 6-10: it replays
one trace against every (scheme, relative cache size) combination on one
architecture and returns the resulting metric summaries.
``run_modulo_radius_sweep`` backs the cache-radius ablation discussed in
sections 4.1-4.2.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.costs.model import LatencyCostModel
from repro.metrics.collector import MetricsSummary
from repro.sim.architecture import Architecture
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.factory import build_scheme
from repro.workload.catalog import ObjectCatalog
from repro.workload.trace import Trace


@dataclass(frozen=True)
class SweepPoint:
    """One (scheme, cache size) measurement."""

    architecture: str
    scheme: str
    relative_cache_size: float
    summary: MetricsSummary


def run_single(
    architecture: Architecture,
    trace: Trace,
    catalog: ObjectCatalog,
    scheme_name: str,
    config: SimulationConfig,
    **scheme_params,
) -> SweepPoint:
    """Run one scheme at one cache size and return its sweep point."""
    cost_model = LatencyCostModel(architecture.network, catalog.mean_size)
    capacity = config.capacity_bytes(catalog.total_bytes)
    dcache_entries = config.dcache_entries(catalog.total_bytes, catalog.mean_size)
    scheme = build_scheme(
        scheme_name, cost_model, capacity, dcache_entries, **scheme_params
    )
    engine = SimulationEngine(
        architecture, cost_model, scheme, warmup_fraction=config.warmup_fraction
    )
    result = engine.run(trace)
    return SweepPoint(
        architecture=architecture.name,
        scheme=scheme.name,
        relative_cache_size=config.relative_cache_size,
        summary=result.summary,
    )


def _sweep_task(
    args: Tuple[Architecture, Trace, ObjectCatalog, str, SimulationConfig, Dict]
) -> SweepPoint:
    """Module-level task wrapper so ProcessPoolExecutor can pickle it."""
    architecture, trace, catalog, name, config, params = args
    return run_single(architecture, trace, catalog, name, config, **params)


def run_cache_size_sweep(
    architecture: Architecture,
    trace: Trace,
    catalog: ObjectCatalog,
    scheme_names: Sequence[str],
    cache_sizes: Iterable[float],
    dcache_ratio: float = 3.0,
    warmup_fraction: float = 0.5,
    scheme_params: Dict[str, Dict] | None = None,
    workers: int = 1,
) -> List[SweepPoint]:
    """Sweep relative cache size for several schemes over one trace.

    ``scheme_params`` maps scheme name to extra keyword arguments (e.g.
    ``{"modulo": {"radius": 4}}``).  Every point replays the same trace on
    fresh caches, exactly as the paper compares schemes.

    ``workers > 1`` fans the (scheme, size) grid out over a process pool;
    points are independent, so results are identical to the sequential
    run (and returned in the same deterministic order) at a fraction of
    the wall-clock time.  Each worker receives its own copy of the
    architecture and trace, so prefer it for grids, not single points.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    params = scheme_params or {}
    tasks = []
    for size in cache_sizes:
        config = SimulationConfig(
            relative_cache_size=size,
            dcache_ratio=dcache_ratio,
            warmup_fraction=warmup_fraction,
        )
        for name in scheme_names:
            tasks.append(
                (architecture, trace, catalog, name, config, params.get(name, {}))
            )
    if workers == 1:
        return [_sweep_task(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=workers) as executor:
        return list(executor.map(_sweep_task, tasks))


def run_modulo_radius_sweep(
    architecture: Architecture,
    trace: Trace,
    catalog: ObjectCatalog,
    radii: Iterable[int],
    relative_cache_size: float,
    warmup_fraction: float = 0.5,
) -> List[SweepPoint]:
    """The MODULO cache-radius ablation (paper sections 4.1-4.2)."""
    config = SimulationConfig(
        relative_cache_size=relative_cache_size,
        warmup_fraction=warmup_fraction,
    )
    return [
        run_single(architecture, trace, catalog, "modulo", config, radius=radius)
        for radius in radii
    ]
