"""Parameter sweeps regenerating the paper's figures.

``run_cache_size_sweep`` is the workhorse behind Figures 6-10: it replays
one trace against every (scheme, relative cache size) combination on one
architecture and returns the resulting metric summaries.
``run_modulo_radius_sweep`` backs the cache-radius ablation discussed in
sections 4.1-4.2.

Both are thin fronts over :func:`repro.experiments.runner.run_grid`,
which provides process-pool parallelism with per-worker state reuse,
checkpoint/resume, and per-point run records (see
:mod:`repro.experiments.runner`).
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.experiments.points import SweepPoint
from repro.experiments.runner import (
    GridTask,
    ProgressEvent,
    execute_point,
    run_grid,
)
from repro.sim.architecture import Architecture
from repro.sim.config import SimulationConfig
from repro.workload.catalog import ObjectCatalog
from repro.workload.trace import Trace

__all__ = [
    "SweepPoint",
    "run_single",
    "run_cache_size_sweep",
    "run_modulo_radius_sweep",
]


def run_single(
    architecture: Architecture,
    trace: Trace,
    catalog: ObjectCatalog,
    scheme_name: str,
    config: SimulationConfig,
    **scheme_params,
) -> SweepPoint:
    """Run one scheme at one cache size and return its sweep point."""
    point, _ = execute_point(
        architecture,
        trace,
        catalog,
        GridTask(scheme=scheme_name, config=config, params=dict(scheme_params)),
    )
    return point


def run_cache_size_sweep(
    architecture: Architecture,
    trace: Trace,
    catalog: ObjectCatalog,
    scheme_names: Sequence[str],
    cache_sizes: Iterable[float],
    dcache_ratio: float = 3.0,
    warmup_fraction: float = 0.5,
    scheme_params: Dict[str, Dict] | None = None,
    workers: int = 1,
    checkpoint_path: str | Path | None = None,
    resume: bool = False,
    progress: Optional[Callable[[ProgressEvent], None]] = None,
    audit: bool = False,
    node_stats: bool = False,
) -> List[SweepPoint]:
    """Sweep relative cache size for several schemes over one trace.

    ``scheme_params`` maps scheme name to extra keyword arguments (e.g.
    ``{"modulo": {"radius": 4}}``).  Every point replays the same trace on
    fresh caches, exactly as the paper compares schemes.

    ``workers > 1`` fans the (scheme, size) grid out over a process pool;
    points are independent, so results are identical to the sequential
    run (and returned in the same deterministic order) at a fraction of
    the wall-clock time.  The shared trace/architecture state is shipped
    to each worker once, at pool start-up.

    ``checkpoint_path`` streams finished points to a JSONL checkpoint;
    pass ``resume=True`` to skip points already recorded there (the
    recovery path after a killed sweep).  ``progress`` receives one
    :class:`~repro.experiments.runner.ProgressEvent` per finished point.

    ``audit`` runs every point under the correctness audit layer (see
    :mod:`repro.verify`); violations become structured entries on the
    run records without changing any metric.  ``node_stats`` attaches
    the per-node stat registry (see :mod:`repro.obs`) to every executed
    point -- the snapshots land on the run records and in the
    checkpoint sidecar, also without changing any metric.
    """
    params = scheme_params or {}
    tasks = []
    for size in cache_sizes:
        config = SimulationConfig(
            relative_cache_size=size,
            dcache_ratio=dcache_ratio,
            warmup_fraction=warmup_fraction,
        )
        for name in scheme_names:
            tasks.append(
                GridTask(scheme=name, config=config, params=params.get(name, {}))
            )
    result = run_grid(
        architecture,
        trace,
        catalog,
        tasks,
        workers=workers,
        checkpoint_path=checkpoint_path,
        resume=resume,
        progress=progress,
        audit=audit,
        node_stats=node_stats,
    )
    return result.points


def run_modulo_radius_sweep(
    architecture: Architecture,
    trace: Trace,
    catalog: ObjectCatalog,
    radii: Iterable[int],
    relative_cache_size: float,
    dcache_ratio: float = 3.0,
    warmup_fraction: float = 0.5,
    workers: int = 1,
    checkpoint_path: str | Path | None = None,
    resume: bool = False,
    progress: Optional[Callable[[ProgressEvent], None]] = None,
    audit: bool = False,
    node_stats: bool = False,
) -> List[SweepPoint]:
    """The MODULO cache-radius ablation (paper sections 4.1-4.2).

    ``dcache_ratio`` is threaded through for parity with
    :func:`run_cache_size_sweep` (MODULO itself holds no descriptors, but
    the config is part of each point's checkpoint identity); parallelism,
    checkpoint/resume and progress reporting follow the same contract.
    """
    config = SimulationConfig(
        relative_cache_size=relative_cache_size,
        dcache_ratio=dcache_ratio,
        warmup_fraction=warmup_fraction,
    )
    tasks = [
        GridTask(scheme="modulo", config=config, params={"radius": radius})
        for radius in radii
    ]
    result = run_grid(
        architecture,
        trace,
        catalog,
        tasks,
        workers=workers,
        checkpoint_path=checkpoint_path,
        resume=resume,
        progress=progress,
        audit=audit,
        node_stats=node_stats,
    )
    return result.points
