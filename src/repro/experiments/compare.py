"""Regression comparison of saved sweep results.

``compare_points`` diffs two sets of sweep points (e.g. a saved baseline
JSON versus a fresh run) metric by metric with a relative tolerance --
the building block for CI-style guarding of the reproduction's numbers
(``cascade-repro compare a.json b.json``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments.sweeps import SweepPoint
from repro.experiments.tables import METRIC_ACCESSORS, metric_value

DEFAULT_METRICS = ("latency", "byte_hit_ratio", "hops", "cache_load")


@dataclass(frozen=True)
class MetricDrift:
    """One metric's deviation between baseline and candidate."""

    scheme: str
    relative_cache_size: float
    metric: str
    baseline: float
    candidate: float

    @property
    def relative_change(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.candidate != 0 else 0.0
        return (self.candidate - self.baseline) / self.baseline


@dataclass(frozen=True)
class ComparisonReport:
    """Outcome of comparing two result sets."""

    matched_points: int
    missing_in_candidate: Tuple[Tuple[str, float], ...]
    extra_in_candidate: Tuple[Tuple[str, float], ...]
    drifts: Tuple[MetricDrift, ...]

    @property
    def ok(self) -> bool:
        return not self.missing_in_candidate and not self.drifts

    def format(self) -> str:
        lines = [f"matched points: {self.matched_points}"]
        for scheme, size in self.missing_in_candidate:
            lines.append(f"MISSING  {scheme} @ {size:g}")
        for scheme, size in self.extra_in_candidate:
            lines.append(f"extra    {scheme} @ {size:g}")
        for drift in self.drifts:
            lines.append(
                f"DRIFT    {drift.scheme} @ {drift.relative_cache_size:g} "
                f"{drift.metric}: {drift.baseline:.6g} -> "
                f"{drift.candidate:.6g} ({drift.relative_change:+.2%})"
            )
        if self.ok:
            lines.append("OK: candidate matches baseline within tolerance")
        return "\n".join(lines)


def _index(points: Sequence[SweepPoint]) -> Dict[Tuple[str, float], SweepPoint]:
    return {(p.scheme, p.relative_cache_size): p for p in points}


def compare_points(
    baseline: Sequence[SweepPoint],
    candidate: Sequence[SweepPoint],
    metrics: Sequence[str] = DEFAULT_METRICS,
    relative_tolerance: float = 0.02,
) -> ComparisonReport:
    """Diff two result sets.

    Points are matched by (scheme, relative cache size); each requested
    metric must agree within ``relative_tolerance`` (relative to the
    baseline value; exact match required when the baseline is 0).
    """
    if relative_tolerance < 0:
        raise ValueError("relative_tolerance must be non-negative")
    unknown = set(metrics) - set(METRIC_ACCESSORS)
    if unknown:
        raise ValueError(f"unknown metrics: {sorted(unknown)}")
    base_index = _index(baseline)
    cand_index = _index(candidate)
    missing = tuple(sorted(set(base_index) - set(cand_index)))
    extra = tuple(sorted(set(cand_index) - set(base_index)))
    drifts: List[MetricDrift] = []
    matched = 0
    for key in sorted(set(base_index) & set(cand_index)):
        matched += 1
        base_point = base_index[key]
        cand_point = cand_index[key]
        for metric in metrics:
            b = metric_value(base_point.summary, metric)
            c = metric_value(cand_point.summary, metric)
            if b == 0:
                within = c == 0
            else:
                within = abs(c - b) <= relative_tolerance * abs(b)
            if not within:
                drifts.append(
                    MetricDrift(
                        scheme=key[0],
                        relative_cache_size=key[1],
                        metric=metric,
                        baseline=b,
                        candidate=c,
                    )
                )
    return ComparisonReport(
        matched_points=matched,
        missing_in_candidate=missing,
        extra_in_candidate=extra,
        drifts=tuple(drifts),
    )
