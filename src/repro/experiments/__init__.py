"""Experiment harness: the paper's tables and figures as runnable sweeps."""

from repro.experiments.presets import (
    DEFAULT_CACHE_SIZES,
    ExperimentPreset,
    PAPER_SCALE,
    SMALL_SCALE,
    STANDARD_SCALE,
)
from repro.experiments.charts import render_ascii_chart, render_figure
from repro.experiments.results_io import (
    load_checkpoint,
    load_points_json,
    load_run_records,
    save_points_json,
    save_run_records,
)
from repro.experiments.robustness import RobustnessResult, run_robustness
from repro.experiments.runner import (
    GridResult,
    GridTask,
    ProgressEvent,
    RunRecord,
    run_grid,
)
from repro.experiments.sweeps import (
    SweepPoint,
    run_cache_size_sweep,
    run_single,
    run_modulo_radius_sweep,
)
from repro.experiments.tables import (
    figure_series,
    format_sweep_table,
    format_table1,
    topology_characteristics,
)

__all__ = [
    "DEFAULT_CACHE_SIZES",
    "ExperimentPreset",
    "GridResult",
    "GridTask",
    "PAPER_SCALE",
    "ProgressEvent",
    "RobustnessResult",
    "RunRecord",
    "SMALL_SCALE",
    "STANDARD_SCALE",
    "SweepPoint",
    "figure_series",
    "format_sweep_table",
    "format_table1",
    "load_checkpoint",
    "load_points_json",
    "load_run_records",
    "render_ascii_chart",
    "render_figure",
    "run_cache_size_sweep",
    "run_grid",
    "run_modulo_radius_sweep",
    "run_robustness",
    "save_run_records",
    "run_single",
    "save_points_json",
    "topology_characteristics",
]
