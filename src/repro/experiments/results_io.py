"""Persisting sweep results as JSON.

Long sweeps are expensive; saving their points lets EXPERIMENTS.md-style
reports, charts and regression comparisons be regenerated without
re-simulating.  The format is a plain JSON document with a schema version
so older result files stay loadable.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import List, Sequence

from repro.experiments.sweeps import SweepPoint
from repro.metrics.collector import MetricsSummary

_SCHEMA_VERSION = 1


def save_points_json(points: Sequence[SweepPoint], path: str | Path) -> None:
    """Write sweep points (with full metric summaries) to a JSON file."""
    document = {
        "schema_version": _SCHEMA_VERSION,
        "points": [
            {
                "architecture": p.architecture,
                "scheme": p.scheme,
                "relative_cache_size": p.relative_cache_size,
                "summary": dataclasses.asdict(p.summary),
            }
            for p in points
        ],
    }
    with open(path, "w") as f:
        json.dump(document, f, indent=2)


def load_points_json(path: str | Path) -> List[SweepPoint]:
    """Load sweep points previously written by :func:`save_points_json`."""
    with open(path) as f:
        document = json.load(f)
    version = document.get("schema_version")
    if version != _SCHEMA_VERSION:
        raise ValueError(f"unsupported results schema version: {version!r}")
    points = []
    for raw in document["points"]:
        summary = dict(raw["summary"])
        if "latency_percentiles" in summary:
            summary["latency_percentiles"] = tuple(
                summary["latency_percentiles"]
            )
        points.append(
            SweepPoint(
                architecture=raw["architecture"],
                scheme=raw["scheme"],
                relative_cache_size=raw["relative_cache_size"],
                summary=MetricsSummary(**summary),
            )
        )
    return points
