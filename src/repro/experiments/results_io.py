"""Persisting sweep results: JSON documents, checkpoints, run records.

Long sweeps are expensive; saving their points lets EXPERIMENTS.md-style
reports, charts and regression comparisons be regenerated without
re-simulating.  Three formats live here:

* **results JSON** (:func:`save_points_json` / :func:`load_points_json`)
  -- a plain versioned document with every point of a finished sweep;
* **checkpoint JSONL** (:class:`CheckpointWriter` /
  :func:`load_checkpoint`) -- one line per *completed* grid point,
  appended and flushed as the experiment runner finishes it, so an
  interrupted sweep resumes by skipping the lines already present.  A
  truncated trailing line (the signature of a killed run) is ignored and
  its point simply re-executes;
* **run records JSON** (:func:`save_run_records`) -- the observability
  sidecar: per-point wall-clock duration, throughput and worker id.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.experiments.points import SweepPoint
from repro.metrics.collector import MetricsSummary

_SCHEMA_VERSION = 1
_CHECKPOINT_SCHEMA_VERSION = 1
_RECORDS_SCHEMA_VERSION = 1


def point_to_dict(point: SweepPoint) -> dict:
    """One sweep point as a JSON-ready dictionary."""
    document = {
        "architecture": point.architecture,
        "scheme": point.scheme,
        "relative_cache_size": point.relative_cache_size,
        "summary": dataclasses.asdict(point.summary),
    }
    if point.coherency is not None:
        document["coherency"] = point.coherency
    if point.provision is not None:
        document["provision"] = point.provision
    return document


def point_from_dict(raw: dict) -> SweepPoint:
    """Inverse of :func:`point_to_dict`."""
    summary = dict(raw["summary"])
    if "latency_percentiles" in summary:
        summary["latency_percentiles"] = tuple(summary["latency_percentiles"])
    return SweepPoint(
        architecture=raw["architecture"],
        scheme=raw["scheme"],
        relative_cache_size=raw["relative_cache_size"],
        summary=MetricsSummary(**summary),
        coherency=raw.get("coherency"),
        provision=raw.get("provision"),
    )


def _dump_json_atomic(document: dict, path: str | Path) -> None:
    """Write a JSON document crash-safely.

    Serializes into a temporary file in the destination directory and
    renames it over the target with ``os.replace``, so an interrupt (or a
    serialization error) mid-write can never destroy an existing file --
    readers see either the old complete document or the new one.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent or Path("."), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as f:
            json.dump(document, f, indent=2)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def save_points_json(points: Sequence[SweepPoint], path: str | Path) -> None:
    """Write sweep points (with full metric summaries) to a JSON file.

    The write is atomic (temp file + rename): a crash mid-write leaves
    any previous results file intact instead of a truncated document.
    """
    document = {
        "schema_version": _SCHEMA_VERSION,
        "points": [point_to_dict(p) for p in points],
    }
    _dump_json_atomic(document, path)


def load_points_json(path: str | Path) -> List[SweepPoint]:
    """Load sweep points previously written by :func:`save_points_json`."""
    with open(path) as f:
        document = json.load(f)
    version = document.get("schema_version")
    if version != _SCHEMA_VERSION:
        raise ValueError(f"unsupported results schema version: {version!r}")
    return [point_from_dict(raw) for raw in document["points"]]


# -- checkpoints ------------------------------------------------------------


class CheckpointWriter:
    """Append-only JSONL sink streaming completed grid points to disk.

    Every :meth:`write` emits one self-contained line and flushes it, so
    the file always reflects the set of finished points even if the
    process dies mid-sweep.  Use as a context manager.
    """

    def __init__(self, path: str | Path, resume: bool = False) -> None:
        self.path = Path(path)
        self._file = open(self.path, "a" if resume else "w")

    def write(self, key: str, point: SweepPoint, record: dict) -> None:
        line = {
            "schema_version": _CHECKPOINT_SCHEMA_VERSION,
            "key": key,
            "point": point_to_dict(point),
            "record": record,
        }
        self._file.write(json.dumps(line) + "\n")
        self._file.flush()

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def iter_checkpoint_lines(path: str | Path):
    """Stream a checkpoint file's well-formed raw lines, in file order.

    The permissive counterpart of :func:`load_checkpoint` for consumers
    that want *every* line rather than last-wins resolution (the results
    warehouse dedupes on content instead): yields the parsed dicts of
    lines that carry the expected schema version, a string ``"key"`` and
    a ``"point"``; everything malformed is skipped the usual way.
    """
    path = Path(path)
    if not path.exists():
        return
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(raw, dict):
                continue
            if raw.get("schema_version") != _CHECKPOINT_SCHEMA_VERSION:
                continue
            if not isinstance(raw.get("key"), str):
                continue
            if not isinstance(raw.get("point"), dict):
                continue
            yield raw


def load_checkpoint(path: str | Path) -> Dict[str, Tuple[SweepPoint, dict]]:
    """Read a checkpoint file into ``{key: (point, record)}``.

    Malformed lines -- a truncated trailing line left by a killed run,
    a line missing its ``"key"`` or ``"point"``, non-JSON garbage -- are
    all skipped the same way: their points simply re-execute on resume.
    A later line for the same key wins (harmless duplicate work).
    """
    done: Dict[str, Tuple[SweepPoint, dict]] = {}
    path = Path(path)
    if not path.exists():
        return done
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(raw, dict):
                continue
            if raw.get("schema_version") != _CHECKPOINT_SCHEMA_VERSION:
                continue
            key = raw.get("key")
            if not isinstance(key, str):
                continue
            try:
                point = point_from_dict(raw["point"])
            except (KeyError, TypeError):
                continue
            record = raw.get("record")
            done[key] = (point, dict(record) if isinstance(record, dict) else {})
    return done


# -- run records ------------------------------------------------------------


def save_run_records(records: Sequence, path: str | Path) -> None:
    """Write per-point run records (the observability sidecar) as JSON.

    Accepts dataclass instances (e.g. the runner's ``RunRecord``) or
    plain dictionaries.  Like :func:`save_points_json` the write is
    atomic, so an interrupt cannot destroy an existing sidecar.
    """
    rows = [
        dataclasses.asdict(r) if dataclasses.is_dataclass(r) else dict(r)
        for r in records
    ]
    document = {"schema_version": _RECORDS_SCHEMA_VERSION, "records": rows}
    _dump_json_atomic(document, path)


def load_run_records(path: str | Path) -> List[dict]:
    """Load run records previously written by :func:`save_run_records`."""
    with open(path) as f:
        document = json.load(f)
    version = document.get("schema_version")
    if version != _RECORDS_SCHEMA_VERSION:
        raise ValueError(f"unsupported run-records schema version: {version!r}")
    return [dict(r) for r in document["records"]]
