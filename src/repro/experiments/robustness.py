"""Multi-seed robustness runs.

The paper reports that its trends hold across five daily traces and "a
wide range of different network topologies" (sections 3.1-3.2).  This
module re-runs a scheme comparison across several seeds -- each seed
producing a fresh trace, topology and attachment -- and aggregates
per-scheme means and standard deviations, so "X beats Y" claims can be
checked for seed-sensitivity rather than read off a single run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.experiments.presets import ExperimentPreset, build_architecture
from repro.experiments.runner import GridTask, run_grid
from repro.experiments.tables import metric_value
from repro.sim.config import SimulationConfig


@dataclass(frozen=True)
class RobustnessResult:
    """Per-scheme metric samples across seeds."""

    architecture: str
    metric: str
    samples: Dict[str, Tuple[float, ...]]

    def mean(self, scheme: str) -> float:
        return float(np.mean(self.samples[scheme]))

    def std(self, scheme: str) -> float:
        return float(np.std(self.samples[scheme]))

    def wins(self, winner: str, loser: str) -> int:
        """In how many seeds ``winner`` strictly beats ``loser`` (lower is better)."""
        return sum(
            1
            for w, l in zip(self.samples[winner], self.samples[loser])
            if w < l
        )

    @property
    def num_seeds(self) -> int:
        return len(next(iter(self.samples.values())))

    def format_table(self) -> str:
        lines = [
            f"{self.metric} on {self.architecture} over {self.num_seeds} seeds",
            f"{'scheme':<14} {'mean':>12} {'std':>12}",
        ]
        for scheme in sorted(self.samples):
            lines.append(
                f"{scheme:<14} {self.mean(scheme):>12.5g} "
                f"{self.std(scheme):>12.3g}"
            )
        return "\n".join(lines)


def run_robustness(
    preset: ExperimentPreset,
    architecture_name: str,
    scheme_names: Sequence[str],
    seeds: Sequence[int],
    relative_cache_size: float,
    metric: str = "latency",
    scheme_params: Dict[str, Dict] | None = None,
    workers: int = 1,
) -> RobustnessResult:
    """Replay the comparison once per seed; every seed re-randomizes
    the trace, the topology and the client/server attachment.

    ``workers > 1`` runs each seed's scheme grid on the process-pool
    runner (one pool per seed, since trace and topology change with the
    seed); results are identical to the sequential run.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    params = scheme_params or {}
    config = SimulationConfig(relative_cache_size=relative_cache_size)
    samples: Dict[str, List[float]] = {}
    for seed in seeds:
        seeded = preset.with_seed(seed)
        generator = seeded.generator()
        trace = generator.generate()
        architecture = build_architecture(
            architecture_name, seeded.workload, seed=seed
        )
        tasks = [
            GridTask(scheme=name, config=config, params=params.get(name, {}))
            for name in scheme_names
        ]
        result = run_grid(
            architecture, trace, generator.catalog, tasks, workers=workers
        )
        for name, point in zip(scheme_names, result.points):
            samples.setdefault(name, []).append(
                metric_value(point.summary, metric)
            )
    # Key results by the resolved scheme display name.
    return RobustnessResult(
        architecture=architecture_name,
        metric=metric,
        samples={k: tuple(v) for k, v in samples.items()},
    )
