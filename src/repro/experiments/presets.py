"""Experiment presets: paper-default parameters at laptop-friendly scales.

The paper replays ~11 M post-warmup requests for 100 k objects; a pure
Python simulator cannot do that per sweep point in reasonable time, so
presets scale the trace down while keeping every *shape-determining*
parameter at its paper value (Zipf-like popularity, cache sizes relative
to the total object volume, topology parameters, warm-up split).  The
``PAPER_SCALE`` preset documents the original dimensions and can be run
when hours of compute are acceptable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.sim.architecture import (
    Architecture,
    build_enroute_architecture,
    build_hierarchical_architecture,
)
from repro.topology.tiers import TiersConfig
from repro.topology.tree import TreeConfig
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig

# The paper sweeps relative cache size 0.1% .. 10% on a log scale (Fig. 6).
DEFAULT_CACHE_SIZES = (0.001, 0.003, 0.01, 0.03, 0.1)


@dataclass(frozen=True)
class ExperimentPreset:
    """A named workload scale."""

    name: str
    workload: WorkloadConfig

    def with_seed(self, seed: int) -> "ExperimentPreset":
        return replace(self, workload=replace(self.workload, seed=seed))

    def with_theta(self, theta: float) -> "ExperimentPreset":
        return replace(
            self, workload=replace(self.workload, zipf_theta=theta)
        )

    def generator(self) -> BoeingLikeTraceGenerator:
        return BoeingLikeTraceGenerator(self.workload)


SMALL_SCALE = ExperimentPreset(
    name="small",
    workload=WorkloadConfig(
        num_objects=500,
        num_servers=10,
        num_clients=60,
        num_requests=12_000,
        zipf_theta=0.8,
    ),
)

STANDARD_SCALE = ExperimentPreset(
    name="standard",
    workload=WorkloadConfig(
        num_objects=2_000,
        num_servers=20,
        num_clients=200,
        num_requests=60_000,
        zipf_theta=0.8,
    ),
)

# Paper dimensions (documented; runs for hours under CPython).
PAPER_SCALE = ExperimentPreset(
    name="paper",
    workload=WorkloadConfig(
        num_objects=100_000,
        num_servers=2_000,
        num_clients=60_000,
        num_requests=11_000_000,
        zipf_theta=0.8,
    ),
)


def build_architecture(
    name: str,
    workload: WorkloadConfig,
    seed: int = 0,
    tiers_config: TiersConfig | None = None,
    tree_config: TreeConfig | None = None,
) -> Architecture:
    """Build one of the paper's two architectures for a given workload."""
    if name == "en-route":
        return build_enroute_architecture(
            num_clients=workload.num_clients,
            num_servers=workload.num_servers,
            tiers_config=tiers_config or TiersConfig(seed=seed),
            seed=seed,
        )
    if name == "hierarchical":
        return build_hierarchical_architecture(
            num_clients=workload.num_clients,
            num_servers=workload.num_servers,
            tree_config=tree_config or TreeConfig(),
            seed=seed,
        )
    raise ValueError(f"unknown architecture {name!r}")
