"""Offline (oracle) static placement planning over distribution trees.

Combines the per-object tree DP of :mod:`repro.analysis.tree_placement`
with a greedy capacity allocator: objects are processed in descending
traffic order; each one is placed optimally on its origin's distribution
tree *given the space still available*, and the space it claims is
subtracted.  The result is a static plan evaluable with
:class:`repro.schemes.static.StaticPlacementScheme` -- an informed upper
bound to compare the online coordinated scheme against (the oracle knows
the true request rates; the online scheme must estimate them).

:func:`greedy_static_plan` handles the single-tree (hierarchical) case;
:func:`greedy_static_plan_multi_tree` generalizes to en-route
architectures where every origin node roots its own shortest-path tree
and node capacity is shared across all of them.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.tree_placement import TreePlacementProblem, optimal_tree_placement
from repro.sim.architecture import Architecture
from repro.workload.catalog import ObjectCatalog

# Loss value used to bar full nodes from a tree-placement problem.  Any
# value above max_demand * max_path_cost works; this is comfortably so.
_FORBIDDEN = 1e18


def node_demand_rates(
    architecture: Architecture,
    object_rates: Sequence[float],
    total_clients: int,
) -> Dict[int, np.ndarray]:
    """Per-node demand rates: object rate split over client attachments.

    ``object_rates[o]`` is object ``o``'s aggregate request rate; each
    client contributes an equal share at its attachment node.
    """
    if total_clients < 1:
        raise ValueError("need at least one client")
    rates = np.asarray(object_rates, dtype=np.float64)
    clients_per_node: Dict[int, int] = {}
    for node in architecture.client_nodes.values():
        clients_per_node[node] = clients_per_node.get(node, 0) + 1
    return {
        node: rates * (count / total_clients)
        for node, count in clients_per_node.items()
    }


def _tree_skeleton(
    architecture: Architecture, root: int
) -> tuple[List[int], List[int]]:
    """(nodes, parent indices) for the distribution tree rooted at ``root``."""
    tree = architecture.routing.tree(root)
    network = architecture.network
    nodes = [v for v in network.nodes() if tree.is_reachable(v)]
    index_of = {v: i for i, v in enumerate(nodes)}
    parents = []
    for v in nodes:
        parent = tree.parent(v)
        parents.append(-1 if parent == -1 else index_of[parent])
    return nodes, parents


def _plan(
    architecture: Architecture,
    catalog: ObjectCatalog,
    object_rates: Sequence[float],
    capacity_bytes: int,
    max_objects: int | None,
) -> Dict[int, List[int]]:
    """Greedy traffic-ordered planning over per-object distribution trees.

    Node capacity is shared across all trees; an object's own origin node
    is its tree's root and therefore never stores a copy of it (but may
    store other servers' objects).
    """
    network = architecture.network
    rates = np.asarray(object_rates, dtype=np.float64)
    if len(rates) != catalog.num_objects:
        raise ValueError("object_rates must cover the whole catalog")
    demand_by_node = node_demand_rates(
        architecture, rates, total_clients=len(architecture.client_nodes)
    )
    mean_size = catalog.mean_size
    skeletons: Dict[int, tuple[List[int], List[int]]] = {}
    remaining: Dict[int, int] = {}
    plan: Dict[int, List[int]] = {}

    traffic_order = np.argsort(-(rates * catalog.sizes))
    if max_objects is not None:
        traffic_order = traffic_order[:max_objects]

    for object_id in traffic_order:
        object_id = int(object_id)
        size = catalog.size(object_id)
        if rates[object_id] <= 0:
            continue
        root = architecture.server_nodes[catalog.server(object_id)]
        if root not in skeletons:
            skeletons[root] = _tree_skeleton(architecture, root)
        nodes, parents = skeletons[root]
        for v in nodes:
            remaining.setdefault(v, capacity_bytes)
        link_costs = tuple(
            0.0
            if parents[i] == -1
            else network.link_delay(v, nodes[parents[i]]) * (size / mean_size)
            for i, v in enumerate(nodes)
        )
        demands = tuple(
            float(demand_by_node[v][object_id]) if v in demand_by_node else 0.0
            for v in nodes
        )
        losses = tuple(
            0.0 if v == root or remaining[v] >= size else _FORBIDDEN
            for v in nodes
        )
        problem = TreePlacementProblem(
            parents=tuple(parents),
            link_costs=link_costs,
            demands=demands,
            losses=losses,
        )
        solution = optimal_tree_placement(problem)
        for i in solution.nodes:
            node = nodes[i]
            if remaining[node] < size:  # defensive; losses should bar this
                continue
            remaining[node] -= size
            plan.setdefault(node, []).append(object_id)
    return plan


def greedy_static_plan(
    architecture: Architecture,
    catalog: ObjectCatalog,
    object_rates: Sequence[float],
    capacity_bytes: int,
    max_objects: int | None = None,
) -> Dict[int, List[int]]:
    """Plan a static placement on a single-tree architecture.

    Returns ``{node: [object ids]}``.  Requires all servers attached to
    one node (the paper's hierarchical setting); use
    :func:`greedy_static_plan_multi_tree` otherwise.
    """
    roots = set(architecture.server_nodes.values())
    if len(roots) != 1:
        raise ValueError(
            "greedy_static_plan supports single-tree architectures only"
        )
    return _plan(architecture, catalog, object_rates, capacity_bytes, max_objects)


def greedy_static_plan_multi_tree(
    architecture: Architecture,
    catalog: ObjectCatalog,
    object_rates: Sequence[float],
    capacity_bytes: int,
    max_objects: int | None = None,
) -> Dict[int, List[int]]:
    """Plan a static placement across per-origin distribution trees.

    The en-route generalization: every origin node roots its own
    shortest-path tree, objects are planned in global traffic order, and
    node capacity is shared across all trees.
    """
    return _plan(architecture, catalog, object_rates, capacity_bytes, max_objects)
