"""Optimal static placement of one object over a distribution tree.

The paper optimizes placement along the *path* a response travels; the
natural offline companion (its reference [11], Li et al., studies the
un-capacitated variant) optimizes over the whole distribution tree at
once: given the local demand rate ``f_v`` each node observes from its own
clients, the cost ``l_v`` of making room at ``v``, and per-link transfer
costs, choose the set of caches minimizing

    total_cost(S) = sum_v f_v * dist(v, nearest ancestor-or-self of v in
                    S + {root}) + sum_{v in S} l_v

where the root always holds the object (it is the origin).  Equivalently
we *maximize* the saving relative to caching nowhere.

The dynamic program processes the tree bottom-up with state
``(node, nearest cached ancestor)``: ``gain(v, a)`` is the best net
saving in ``v``'s subtree when the closest copy above ``v`` sits at
ancestor ``a``.  With ``h`` the tree height, there are ``O(n h)`` states
and each edge is scanned once per ancestor, giving ``O(n h)`` time --
comfortably polynomial where brute force is ``O(2^n)``.

Consistency with the paper's path DP is cross-checked in the tests: on a
chain, this solver and :func:`repro.core.placement.solve_placement`
produce the same value (local demands ``f_v - f_{v+1}`` correspond to the
paper's cumulative path frequencies ``f_i``).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Set, Tuple


@dataclass(frozen=True)
class TreePlacementProblem:
    """One object's placement problem over a rooted tree.

    ``parents[v]`` is the parent of node ``v`` (the root has parent
    ``-1``); ``link_costs[v]`` is the cost of shipping the object over the
    link from ``v`` to its parent (ignored for the root); ``demands[v]``
    is the local request rate node ``v`` observes from its own clients;
    ``losses[v]`` is the cost loss of making room at ``v`` (the root's
    entries are ignored -- it is the origin and always holds the object).
    """

    parents: Tuple[int, ...]
    link_costs: Tuple[float, ...]
    demands: Tuple[float, ...]
    losses: Tuple[float, ...]

    def __post_init__(self) -> None:
        n = len(self.parents)
        if n == 0:
            raise ValueError("tree must have at least the root")
        for name in ("link_costs", "demands", "losses"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"{name} must have {n} entries")
        roots = [v for v, p in enumerate(self.parents) if p == -1]
        if len(roots) != 1:
            raise ValueError("exactly one root (parent -1) required")
        for v, p in enumerate(self.parents):
            if p != -1 and not 0 <= p < n:
                raise ValueError(f"node {v} has invalid parent {p}")
        if any(c < 0 for c in self.link_costs):
            raise ValueError("link costs must be non-negative")
        if any(d < 0 for d in self.demands):
            raise ValueError("demands must be non-negative")
        if any(l < 0 for l in self.losses):
            raise ValueError("losses must be non-negative")
        # Reject cycles: walking up from every node must reach the root.
        for v in range(n):
            seen = 0
            current = v
            while current != -1:
                current = self.parents[current]
                seen += 1
                if seen > n:
                    raise ValueError("parent pointers contain a cycle")

    @property
    def num_nodes(self) -> int:
        return len(self.parents)

    @property
    def root(self) -> int:
        return next(v for v, p in enumerate(self.parents) if p == -1)

    def children(self) -> List[List[int]]:
        kids: List[List[int]] = [[] for _ in range(self.num_nodes)]
        for v, p in enumerate(self.parents):
            if p != -1:
                kids[p].append(v)
        return kids

    def total_cost(self, placement: Set[int]) -> float:
        """Objective value of an arbitrary placement (root implicit)."""
        holders = set(placement) | {self.root}
        total = sum(self.losses[v] for v in placement if v != self.root)
        for v in range(self.num_nodes):
            if self.demands[v] == 0:
                continue
            cost = 0.0
            current = v
            while current not in holders:
                cost += self.link_costs[current]
                current = self.parents[current]
            total += self.demands[v] * cost
        return total


@dataclass(frozen=True)
class TreePlacementSolution:
    """Chosen cache nodes (root excluded) and the saving vs caching nowhere."""

    nodes: frozenset
    saving: float
    total_cost: float


def optimal_tree_placement(
    problem: TreePlacementProblem,
) -> TreePlacementSolution:
    """Solve the tree placement problem exactly in ``O(n h)``."""
    n = problem.num_nodes
    root = problem.root
    children = problem.children()

    # Ancestor lists (self excluded) and cost-to-ancestor tables.
    ancestors: List[List[int]] = [[] for _ in range(n)]
    dist_up: List[Dict[int, float]] = [dict() for _ in range(n)]
    order: List[int] = []
    stack = [root]
    while stack:
        v = stack.pop()
        order.append(v)
        for c in children[v]:
            ancestors[c] = [v] + ancestors[v]
            dist_up[c] = {v: problem.link_costs[c]}
            for a, d in dist_up[v].items():
                dist_up[c][a] = problem.link_costs[c] + d
            stack.append(c)

    # cost[v][a]: minimum total cost (demand transfer + losses) within
    # v's subtree when the nearest copy above v sits at ancestor a.
    # Process in reverse BFS order (leaves first).
    cost: List[Dict[int, float]] = [dict() for _ in range(n)]
    take: List[Dict[int, bool]] = [dict() for _ in range(n)]
    for v in reversed(order):
        if v == root:
            continue
        for a in ancestors[v]:
            cache = problem.losses[v] + sum(cost[c][v] for c in children[v])
            skip = problem.demands[v] * dist_up[v][a] + sum(
                cost[c][a] for c in children[v]
            )
            if cache < skip:
                cost[v][a] = cache
                take[v][a] = True
            else:
                cost[v][a] = skip
                take[v][a] = False

    best_cost = sum(cost[c][root] for c in children[root])
    best_saving = problem.total_cost(set()) - best_cost

    # Recover the chosen set by walking down with the active ancestor.
    chosen: Set[int] = set()
    walk: List[Tuple[int, int]] = [(c, root) for c in children[root]]
    while walk:
        v, a = walk.pop()
        if take[v][a]:
            chosen.add(v)
            walk.extend((c, v) for c in children[v])
        else:
            walk.extend((c, a) for c in children[v])

    return TreePlacementSolution(
        nodes=frozenset(chosen),
        saving=best_saving,
        total_cost=problem.total_cost(chosen),
    )


def brute_force_tree_placement(
    problem: TreePlacementProblem,
) -> TreePlacementSolution:
    """Exhaustive reference solver (tests only; n <= ~16)."""
    n = problem.num_nodes
    if n > 18:
        raise ValueError("brute force limited to small trees")
    candidates = [v for v in range(n) if v != problem.root]
    empty_cost = problem.total_cost(set())
    best_cost = empty_cost
    best: Set[int] = set()
    for r in range(1, len(candidates) + 1):
        for subset in combinations(candidates, r):
            cost = problem.total_cost(set(subset))
            if cost < best_cost:
                best_cost = cost
                best = set(subset)
    return TreePlacementSolution(
        nodes=frozenset(best),
        saving=empty_cost - best_cost,
        total_cost=best_cost,
    )
