"""Analytical companions to the simulator.

* :mod:`repro.analysis.tree_placement` -- optimal *static* placement of
  one object over an entire distribution tree (the generalization of the
  paper's per-path DP; cf. Li et al. [11] in the paper's references).
  Useful as an offline upper bound for what coordinated per-path
  decisions can achieve.
* :mod:`repro.analysis.che` -- Che's approximation for LRU cache hit
  ratios under independent-reference (Zipf) demand; used to sanity-check
  the simulator's LRU substrate against theory.
"""

from repro.analysis.che import (
    cascade_byte_hit_ratio,
    cascade_lru_hit_ratios,
    characteristic_time,
    expected_byte_hit_ratio,
    lru_hit_ratios,
)
from repro.analysis.static_plan import (
    greedy_static_plan,
    greedy_static_plan_multi_tree,
    node_demand_rates,
)
from repro.analysis.tree_placement import (
    TreePlacementProblem,
    brute_force_tree_placement,
    optimal_tree_placement,
)

__all__ = [
    "TreePlacementProblem",
    "brute_force_tree_placement",
    "cascade_byte_hit_ratio",
    "cascade_lru_hit_ratios",
    "characteristic_time",
    "expected_byte_hit_ratio",
    "greedy_static_plan",
    "greedy_static_plan_multi_tree",
    "lru_hit_ratios",
    "node_demand_rates",
    "optimal_tree_placement",
]
