"""Che's approximation for LRU caches under independent-reference demand.

Che, Tung & Wang (2002) approximate an LRU cache of capacity ``C`` by a
*characteristic time* ``T`` such that an object stays cached for ``T``
after its last reference.  Under Poisson per-object request rates
``lambda_i`` the hit probability is ``h_i = 1 - exp(-lambda_i * T)`` and
``T`` solves

    sum_i s_i * (1 - exp(-lambda_i * T)) = C      (byte capacity)

The approximation is famously accurate for Zipf demand, which makes it a
good analytical cross-check of this repo's LRU substrate: the tests drive
a single simulated LRU cache with an IRM trace and compare byte hit
ratios against this module.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def characteristic_time(
    rates: Sequence[float],
    sizes: Sequence[float],
    capacity_bytes: float,
    tolerance: float = 1e-9,
    max_iterations: int = 200,
) -> float:
    """Solve for Che's characteristic time ``T`` by bisection.

    Returns ``inf`` when the capacity fits the whole object population
    (everything stays cached forever).
    """
    rates_arr = np.asarray(rates, dtype=np.float64)
    sizes_arr = np.asarray(sizes, dtype=np.float64)
    if rates_arr.shape != sizes_arr.shape or rates_arr.ndim != 1:
        raise ValueError("rates and sizes must be 1-d and aligned")
    if len(rates_arr) == 0:
        raise ValueError("need at least one object")
    if (rates_arr < 0).any() or (sizes_arr <= 0).any():
        raise ValueError("rates must be >= 0 and sizes > 0")
    if capacity_bytes <= 0:
        return 0.0
    if sizes_arr.sum() <= capacity_bytes:
        return float("inf")

    def occupied(t: float) -> float:
        return float(np.sum(sizes_arr * -np.expm1(-rates_arr * t)))

    low, high = 0.0, 1.0
    while occupied(high) < capacity_bytes:
        high *= 2.0
        if high > 1e18:  # pragma: no cover - defensive
            return high
    for _ in range(max_iterations):
        mid = (low + high) / 2.0
        if occupied(mid) < capacity_bytes:
            low = mid
        else:
            high = mid
        if high - low < tolerance * max(high, 1.0):
            break
    return (low + high) / 2.0


def lru_hit_ratios(
    rates: Sequence[float],
    sizes: Sequence[float],
    capacity_bytes: float,
) -> np.ndarray:
    """Per-object hit probabilities ``h_i = 1 - exp(-lambda_i T)``."""
    t = characteristic_time(rates, sizes, capacity_bytes)
    rates_arr = np.asarray(rates, dtype=np.float64)
    if t == float("inf"):
        return np.where(rates_arr > 0, 1.0, 0.0)
    return -np.expm1(-rates_arr * t)


def expected_byte_hit_ratio(
    rates: Sequence[float],
    sizes: Sequence[float],
    capacity_bytes: float,
) -> float:
    """Traffic-weighted byte hit ratio the cache should deliver.

    ``sum_i lambda_i s_i h_i / sum_i lambda_i s_i`` -- the quantity the
    simulator's byte-hit-ratio metric estimates empirically.
    """
    rates_arr = np.asarray(rates, dtype=np.float64)
    sizes_arr = np.asarray(sizes, dtype=np.float64)
    hits = lru_hit_ratios(rates_arr, sizes_arr, capacity_bytes)
    traffic = rates_arr * sizes_arr
    total = traffic.sum()
    if total <= 0:
        return 0.0
    return float((traffic * hits).sum() / total)


def cascade_lru_hit_ratios(
    rates: Sequence[float],
    sizes: Sequence[float],
    capacity_bytes: float,
    fanouts: Sequence[int],
) -> np.ndarray:
    """Per-level hit probabilities for an LRU cache *tree* (leaves first).

    Extends Che's approximation to the paper's hierarchical architecture
    under cache-everywhere LRU: level 0 caches split the aggregate demand
    evenly across the leaves; each higher level sees the superposition of
    its children's *miss streams*, treated (approximately) as fresh
    independent-reference demand and fed through Che again.

    ``fanouts[l]`` is the number of level-``l`` units feeding one
    level-``l+1`` cache; ``fanouts[0]`` therefore aggregates leaves into a
    level-1 cache.  With ``fanouts = [3, 3, 3]`` this models the paper's
    depth-4, 3-ary tree (27 leaves, 9 + 3 + 1 upper caches).  Every cache
    has ``capacity_bytes``.

    Returns an array of shape ``(num_levels, num_objects)`` with
    ``h[l, i]`` the hit probability of object ``i`` at a level-``l`` cache
    *given* the request reached that level.  The well-known caveat
    applies: miss streams are less bursty than Poisson, so upper-level
    estimates err optimistic; accuracy is validated against simulation in
    the tests at the ~0.1 level.
    """
    rates_arr = np.asarray(rates, dtype=np.float64)
    sizes_arr = np.asarray(sizes, dtype=np.float64)
    if any(f < 1 for f in fanouts):
        raise ValueError("fanouts must be >= 1")
    num_leaves = int(np.prod(fanouts))
    levels = len(fanouts) + 1
    hit = np.zeros((levels, len(rates_arr)))
    # Demand arriving at one cache of the current level.
    demand = rates_arr / num_leaves
    for level in range(levels):
        hit[level] = lru_hit_ratios(demand, sizes_arr, capacity_bytes)
        if level < len(fanouts):
            demand = fanouts[level] * demand * (1.0 - hit[level])
    return hit


def cascade_byte_hit_ratio(
    rates: Sequence[float],
    sizes: Sequence[float],
    capacity_bytes: float,
    fanouts: Sequence[int],
) -> float:
    """System-wide byte hit ratio of the LRU cache tree.

    An object's request is served by *some* cache unless it misses every
    level: ``h_i = 1 - prod_l (1 - h[l, i])``.
    """
    rates_arr = np.asarray(rates, dtype=np.float64)
    sizes_arr = np.asarray(sizes, dtype=np.float64)
    per_level = cascade_lru_hit_ratios(rates_arr, sizes_arr, capacity_bytes, fanouts)
    overall = 1.0 - np.prod(1.0 - per_level, axis=0)
    traffic = rates_arr * sizes_arr
    total = traffic.sum()
    if total <= 0:
        return 0.0
    return float((traffic * overall).sum() / total)
