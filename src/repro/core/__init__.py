"""The paper's primary contribution: coordinated cascaded-cache management.

* :mod:`repro.core.placement` -- the k-optimization problem and its
  dynamic-programming solution (paper section 2.2).
* :mod:`repro.core.descriptors` -- object descriptors (size, sliding-window
  frequency, miss penalty) shared by main caches and d-caches.
* :mod:`repro.core.piggyback` -- the request/response piggyback records the
  coordinated scheme exchanges along delivery paths (section 2.3).
* :mod:`repro.core.coordinated` -- the coordinated caching scheme itself.
"""

from repro.core.descriptors import ObjectDescriptor
from repro.core.placement import (
    PlacementProblem,
    PlacementSolution,
    brute_force_placement,
    enforce_monotone_frequencies,
    solve_placement,
)
from repro.core.piggyback import NodeReport, RequestEnvelope, ResponseEnvelope
from repro.core.coordinated import CoordinatedScheme

__all__ = [
    "CoordinatedScheme",
    "NodeReport",
    "ObjectDescriptor",
    "PlacementProblem",
    "PlacementSolution",
    "RequestEnvelope",
    "ResponseEnvelope",
    "brute_force_placement",
    "enforce_monotone_frequencies",
    "solve_placement",
]
