"""The k-optimization problem and its dynamic-programming solution.

Paper section 2.2, Definition 1: given non-increasing access frequencies
``f_1 >= ... >= f_n >= f_{n+1} = 0``, miss penalties ``m_i >= 0`` and cost
losses ``l_i >= 0``, choose indices ``v_1 < ... < v_r`` maximizing

    sum_i ((f_{v_i} - f_{v_{i+1}}) * m_{v_i} - l_{v_i}),   f_{v_{r+1}} = 0.

Theorem 1 gives optimal substructure, yielding the O(n^2) recurrences

    OPT_0 = 0
    OPT_k = max(0, max_{1<=i<=k} OPT_{i-1} + (f_i - f_{k+1}) * m_i - l_i)

with back-pointers ``L_k`` (the largest index in an optimal solution of the
k-problem, or -1 when the optimum is the empty set).  The full placement
problem is the n-optimization problem; the solution is recovered by
iterating ``v_r = L_n``, ``v_{i} = L_{v_{i+1} - 1}``.

This module indexes nodes 0-based: position ``0`` is ``A_1`` (the cache
adjacent to the node satisfying the request) and position ``n-1`` is
``A_n`` (where the request originated).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import List, Sequence, Tuple

_MONOTONE_SLACK = 1e-9


@dataclass(frozen=True)
class PlacementProblem:
    """Inputs of one n-optimization problem.

    ``frequencies[i]``, ``penalties[i]`` and ``losses[i]`` describe the
    cache at 0-based position ``i`` along the delivery path, ordered from
    the serving node towards the requester.  Frequencies must be
    non-increasing (use :func:`enforce_monotone_frequencies` to repair
    noisy estimates first).
    """

    frequencies: Tuple[float, ...]
    penalties: Tuple[float, ...]
    losses: Tuple[float, ...]

    def __post_init__(self) -> None:
        n = len(self.frequencies)
        if n == 0:
            raise ValueError("placement problem needs at least one node")
        if len(self.penalties) != n or len(self.losses) != n:
            raise ValueError("frequencies, penalties, losses must align")
        if any(f < 0 for f in self.frequencies):
            raise ValueError("frequencies must be non-negative")
        if any(m < 0 for m in self.penalties):
            raise ValueError("penalties must be non-negative")
        if any(l < 0 for l in self.losses):
            raise ValueError("losses must be non-negative")
        for a, b in zip(self.frequencies, self.frequencies[1:]):
            if b > a + _MONOTONE_SLACK:
                raise ValueError(
                    "frequencies must be non-increasing along the path; "
                    "apply enforce_monotone_frequencies first"
                )

    @property
    def num_nodes(self) -> int:
        return len(self.frequencies)

    def objective(self, indices: Sequence[int]) -> float:
        """``Delta-cost`` of caching at the given 0-based positions."""
        ordered = list(indices)
        if ordered != sorted(set(ordered)):
            raise ValueError("indices must be strictly increasing")
        if ordered and not 0 <= ordered[0] <= ordered[-1] < self.num_nodes:
            raise IndexError("index out of range")
        total = 0.0
        for pos, i in enumerate(ordered):
            next_f = (
                self.frequencies[ordered[pos + 1]]
                if pos + 1 < len(ordered)
                else 0.0
            )
            total += (self.frequencies[i] - next_f) * self.penalties[i]
            total -= self.losses[i]
        return total


@dataclass(frozen=True)
class PlacementSolution:
    """Caching positions (0-based, strictly increasing) and their gain.

    ``method`` records which solver produced the solution (``"dp"`` for
    the exact dynamic program, ``"greedy"`` for the online marginal-gain
    approximation).  It is excluded from equality so solutions compare by
    content alone.
    """

    indices: Tuple[int, ...]
    gain: float
    method: str = field(default="dp", compare=False)

    @property
    def is_exact(self) -> bool:
        return self.method == "dp"


def solve_placement(problem: PlacementProblem) -> PlacementSolution:
    """Solve the n-optimization problem in O(n^2) by dynamic programming."""
    n = problem.num_nodes
    f = problem.frequencies
    m = problem.penalties
    l = problem.losses

    # opt[k] / last[k] follow the paper's OPT_k / L_k with k in 0..n and
    # 1-based node indices internally; f_{k+1} for k == n is 0.
    opt = [0.0] * (n + 1)
    last = [-1] * (n + 1)
    for k in range(1, n + 1):
        f_next = f[k] if k < n else 0.0
        best = 0.0
        best_i = -1
        for i in range(1, k + 1):
            candidate = opt[i - 1] + (f[i - 1] - f_next) * m[i - 1] - l[i - 1]
            if candidate > best:
                best = candidate
                best_i = i
        opt[k] = best
        last[k] = best_i

    indices: List[int] = []
    k = n
    while k > 0 and last[k] > 0:
        v = last[k]
        indices.append(v - 1)  # convert to 0-based position
        k = v - 1
    indices.reverse()
    return PlacementSolution(indices=tuple(indices), gain=opt[n])


def greedy_placement(problem: PlacementProblem) -> PlacementSolution:
    """Online marginal-gain approximation of the n-optimization problem.

    The adaptive scheme [Ioannidis & Yeh 2016, PAPERS.md] replaces the
    exact dynamic program with hill climbing on the same objective: start
    from the empty placement and repeatedly add the position whose
    inclusion yields the largest strictly positive marginal gain, until
    no single addition improves the objective.  The objective is
    submodular in the chosen set, so this is the classic greedy
    approximation; it is deterministic (smallest index wins ties) and
    never exceeds the DP optimum, making the gap between the two an
    auditable quantity (see :class:`repro.verify.oracles.PlacementOracle`).
    """
    n = problem.num_nodes
    chosen: List[int] = []
    current = 0.0
    remaining = list(range(n))
    while remaining:
        best_gain = current
        best_pos = -1
        for pos in remaining:
            candidate = sorted(chosen + [pos])
            gain = problem.objective(candidate)
            if gain > best_gain + 1e-15:
                best_gain = gain
                best_pos = pos
        if best_pos < 0:
            break
        chosen.append(best_pos)
        remaining.remove(best_pos)
        current = best_gain
    indices = tuple(sorted(chosen))
    return PlacementSolution(indices=indices, gain=current, method="greedy")


def brute_force_placement(problem: PlacementProblem) -> PlacementSolution:
    """Exhaustive O(2^n) reference solver (tests only; n <= ~16)."""
    n = problem.num_nodes
    if n > 20:
        raise ValueError("brute force limited to small problems")
    best_gain = 0.0
    best: Tuple[int, ...] = ()
    for r in range(1, n + 1):
        for subset in combinations(range(n), r):
            gain = problem.objective(subset)
            if gain > best_gain:
                best_gain = gain
                best = subset
    return PlacementSolution(indices=best, gain=best_gain)


def enforce_monotone_frequencies(frequencies: Sequence[float]) -> List[float]:
    """Repair noisy per-node frequency estimates to be non-increasing.

    In the model, every request counted at position ``i`` also passes
    position ``i-1`` (closer to the server), so true frequencies satisfy
    ``f_1 >= ... >= f_n``.  Independent sliding-window estimates can
    violate this; the repair takes the running maximum from the requester
    end towards the server end, the smallest pointwise increase that
    restores monotonicity without lowering any estimate.
    """
    repaired = [max(f, 0.0) for f in frequencies]
    for i in range(len(repaired) - 2, -1, -1):
        if repaired[i] < repaired[i + 1]:
            repaired[i] = repaired[i + 1]
    return repaired
