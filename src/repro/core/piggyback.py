"""Piggyback records exchanged along delivery paths (paper section 2.3).

The coordinated scheme adds a small record to each *request* as it passes
an intermediate cache -- the node's frequency estimate, miss penalty and
prospective cost loss for the requested object -- plus a flag when the node
has no descriptor for the object (such nodes are pruned from the candidate
set, section 2.4).  The *response* carries the placement decision and a
cost accumulator used to refresh miss penalties: each node adds the cost of
the link the object just traversed, and nodes that store a copy reset it
to zero before forwarding downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List

# Wire-size assumptions for overhead accounting (paper section 2.4 puts a
# descriptor at "a few tens of bytes"); tunable in ProtocolStats.
REPORT_BYTES = 24       # f, m, l as packed floats
TAG_BYTES = 2           # the "no descriptor" tag
DECISION_BYTES = 4      # one node id in the response's cache_at set
ACCUMULATOR_BYTES = 8   # the response's running cost variable
SKIPPED_NODE_BYTES = 4  # one bypassed-hop record when failover shortens a walk
INV_FRAME_BYTES = 12    # one in-band invalidation frame (object id + type)


@dataclass
class ProtocolStats:
    """Coordination-protocol message overhead counters.

    The coordinated scheme increments these as requests and responses
    travel; :meth:`overhead_bytes` converts them to a wire-byte estimate
    so the paper's "communication overhead ... is small" claim (section
    2.3) can be checked against the object bytes actually moved.

    ``invalidations`` counts in-band ``inv`` frames delivered to cache
    nodes (one per node per update event -- the invalidation broadcast
    fans out to every cache), so invalidation traffic no longer rides
    free in the overhead estimate.  Out-of-band channel coherency never
    increments it; its traffic is priced separately in
    :class:`~repro.coherency.stats.CoherencyStats`.
    """

    requests: int = 0
    reports: int = 0
    no_descriptor_tags: int = 0
    decisions: int = 0
    responses_with_accumulator: int = 0
    invalidations: int = 0

    def overhead_bytes(
        self,
        report_bytes: int = REPORT_BYTES,
        tag_bytes: int = TAG_BYTES,
        decision_bytes: int = DECISION_BYTES,
        accumulator_bytes: int = ACCUMULATOR_BYTES,
        inv_frame_bytes: int = INV_FRAME_BYTES,
    ) -> int:
        """Total protocol bytes under the given wire-size assumptions."""
        return (
            self.reports * report_bytes
            + self.no_descriptor_tags * tag_bytes
            + self.decisions * decision_bytes
            + self.responses_with_accumulator * accumulator_bytes
            + self.invalidations * inv_frame_bytes
        )


@dataclass(frozen=True)
class NodeReport:
    """One intermediate cache's contribution to the request message.

    ``cost_loss`` is ``None`` when the node cannot cache the object at all
    (object larger than its cache); ``has_descriptor`` is ``False`` when
    the node lacks a descriptor for the object in both its main cache and
    its d-cache (the special tag of section 2.4).
    """

    node: int
    frequency: float
    miss_penalty: float
    cost_loss: float | None
    has_descriptor: bool

    def is_candidate(self) -> bool:
        """Whether the DP should consider caching at this node."""
        return self.has_descriptor and self.cost_loss is not None

    def to_dict(self) -> dict:
        """Compact wire form for the live protocol (JSON round-trip exact).

        Short keys keep the per-hop frame close to the paper's
        few-tens-of-bytes descriptor budget; floats survive JSON
        unchanged (shortest-repr encoding).
        """
        return {
            "n": self.node,
            "f": self.frequency,
            "m": self.miss_penalty,
            "l": self.cost_loss,
            "d": self.has_descriptor,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "NodeReport":
        return cls(
            node=raw["n"],
            frequency=raw["f"],
            miss_penalty=raw["m"],
            cost_loss=raw["l"],
            has_descriptor=raw["d"],
        )


@dataclass
class RequestEnvelope:
    """A request message accumulating node reports on its way upstream.

    Reports are appended in travel order, i.e. from the requester ``A_n``
    towards the serving node; ``reports_server_first()`` returns them in
    the DP's ``A_1 .. A_n`` order.
    """

    object_id: int
    reports: List[NodeReport] = field(default_factory=list)

    def add_report(self, report: NodeReport) -> None:
        self.reports.append(report)

    def reports_server_first(self) -> List[NodeReport]:
        return list(reversed(self.reports))


@dataclass(frozen=True)
class ResponseEnvelope:
    """The serving node's reply: where to cache the object.

    ``cache_at`` holds node ids.  The cost accumulator itself is advanced
    by the scheme while walking the response down the path (it is state of
    the walk, not of the message dataclass).
    """

    object_id: int
    cache_at: FrozenSet[int]
    expected_gain: float

    def should_cache(self, node: int) -> bool:
        return node in self.cache_at
