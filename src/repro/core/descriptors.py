"""Object descriptors (re-export).

The descriptor type lives with the cache substrate in
:mod:`repro.cache.descriptors`; it is re-exported here because the paper
introduces descriptors as part of the coordinated scheme (section 2.3)
and users naturally look for them under :mod:`repro.core`.
"""

from repro.cache.descriptors import ObjectDescriptor

__all__ = ["ObjectDescriptor"]
