"""The coordinated caching scheme (paper sections 2.3-2.4).

Per request, the scheme runs the three-phase protocol:

1. **Upstream walk.**  The request travels from the requester towards the
   origin; every intermediate cache appends a :class:`NodeReport` carrying
   its frequency estimate ``f_i``, stored miss penalty ``m_i`` and
   prospective eviction cost loss ``l_i`` for the object -- or a
   "no descriptor" tag when the object is unknown to both its main cache
   and d-cache (such nodes are pruned from the candidate set, Theorem 2's
   justification).  The walk stops at the first cache holding the object.

2. **Placement decision.**  The serving node repairs the piggybacked
   frequencies to be non-increasing and solves the n-optimization problem
   by dynamic programming (:func:`~repro.core.placement.solve_placement`),
   yielding the set of caches that should store a copy.

3. **Downstream walk.**  The object travels back with a cost accumulator
   (initially 0).  At each node the accumulator grows by the cost of the
   link just traversed and refreshes the node's stored miss penalty for
   the object; nodes instructed to cache insert the copy (greedy-NCL
   eviction, victims' descriptors dropping to the d-cache) and reset the
   accumulator to 0; other nodes ensure a d-cache descriptor exists.

No extra messages or probes are used -- all information rides on the
request/response pair, as in the paper.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.piggyback import (
    ACCUMULATOR_BYTES,
    DECISION_BYTES,
    REPORT_BYTES,
    TAG_BYTES,
    NodeReport,
    ProtocolStats,
    RequestEnvelope,
    ResponseEnvelope,
)
from repro.obs.timers import PHASE_DP_SOLVE
from repro.core.placement import (
    PlacementProblem,
    PlacementSolution,
    enforce_monotone_frequencies,
    solve_placement,
)
from repro.schemes.base import RequestOutcome
from repro.schemes.descriptor_scheme import DescriptorSchemeBase


class CoordinatedScheme(DescriptorSchemeBase):
    """Integrated placement + replacement along delivery paths."""

    name = "coordinated"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.protocol_stats = ProtocolStats()
        # Audit seam: when set, every solved placement problem and its
        # solution are reported here (see repro.verify.oracles).  Purely
        # observational -- must never influence the decision.
        self.placement_observer: Optional[
            Callable[[PlacementProblem, PlacementSolution], None]
        ] = None

    # The placement solver; subclasses swap in approximations (greedy,
    # single-copy) while inheriting the full piggyback protocol.
    _solver = staticmethod(solve_placement)

    def _solve(self, problem: PlacementProblem) -> PlacementSolution:
        """Solver seam (overridden by the audit self-test's mutants)."""
        instruments = self._instruments
        if instruments is not None and instruments.timers is not None:
            started = perf_counter()
            solution = self._solver(problem)
            instruments.timers.add(PHASE_DP_SOLVE, perf_counter() - started)
            return solution
        return self._solver(problem)

    # -- protocol phases -------------------------------------------------------

    def lookup_step(
        self, node: int, object_id: int, size: int, now: float
    ) -> Tuple[bool, Optional[NodeReport]]:
        """One upstream stop: local lookup plus the piggybacked report.

        A hit touches recency and ends the walk (no report -- the serving
        node contributes nothing to its own candidate set); a miss
        records the reference and returns the node's ``(f_i, m_i, l_i)``
        report, or the "no descriptor" tag when the object is unknown to
        both the main cache and the d-cache.
        """
        state = self.node_state(node)
        if object_id in state.cache:
            state.cache.record_access(object_id, now)
            return True, None
        descriptor = state.record_request(object_id, now)
        if descriptor is None:
            report = NodeReport(
                node=node,
                frequency=0.0,
                miss_penalty=0.0,
                cost_loss=None,
                has_descriptor=False,
            )
        else:
            report = NodeReport(
                node=node,
                frequency=descriptor.frequency(now),
                miss_penalty=descriptor.miss_penalty,
                cost_loss=state.cache.cost_loss(object_id, size, now),
                has_descriptor=True,
            )
        return False, report

    def _upstream_walk(
        self, path: Sequence[int], object_id: int, size: int, now: float
    ) -> Tuple[int, RequestEnvelope]:
        """Phase 1: find the serving node, collecting node reports."""
        envelope = RequestEnvelope(object_id)
        last = len(path) - 1
        for i in range(last):
            hit, report = self.lookup_step(path[i], object_id, size, now)
            if hit:
                return i, envelope
            envelope.add_report(report)
        return last, envelope

    def decide_placement(
        self, envelope: RequestEnvelope, now: float
    ) -> ResponseEnvelope:
        """Phase 2: the serving node's dynamic-programming decision.

        Exposed publicly so the decision step can be unit-tested and
        inspected independently of the simulator.
        """
        candidates = [
            r for r in envelope.reports_server_first() if r.is_candidate()
        ]
        if not candidates:
            return ResponseEnvelope(
                object_id=envelope.object_id,
                cache_at=frozenset(),
                expected_gain=0.0,
            )
        frequencies = enforce_monotone_frequencies(
            [r.frequency for r in candidates]
        )
        problem = PlacementProblem(
            frequencies=tuple(frequencies),
            penalties=tuple(r.miss_penalty for r in candidates),
            losses=tuple(r.cost_loss for r in candidates),
        )
        solution = self._solve(problem)
        if self.placement_observer is not None:
            self.placement_observer(problem, solution)
        chosen = frozenset(candidates[i].node for i in solution.indices)
        return ResponseEnvelope(
            object_id=envelope.object_id,
            cache_at=chosen,
            expected_gain=solution.gain,
        )

    def decide_step(
        self,
        path: Sequence[int],
        hit_index: int,
        reports: Sequence[NodeReport],
        object_id: int,
        size: int,
        now: float,
    ) -> dict:
        """Phase 2 as a node-local step: decision from piggybacked reports.

        The live serving layer calls this at the node that satisfied the
        request (a cache, or the origin attachment), handing it the
        reports collected on the way up.  The returned decision payload
        ships downstream with the object: the ``cache_at`` instruction
        set, the DP's expected gain, and the cost accumulator ``acc``
        that :meth:`deliver_step` advances hop by hop.  Protocol-overhead
        counters are charged here, exactly as one
        :meth:`process_request` charges them.
        """
        envelope = RequestEnvelope(object_id)
        for report in reports:
            envelope.add_report(report)
        response = self.decide_placement(envelope, now)
        self._count_protocol(envelope, response, hit_index)
        return {
            "cache_at": sorted(response.cache_at),
            "gain": response.expected_gain,
            "acc": 0.0,
        }

    def deliver_step(
        self,
        index: int,
        path: Sequence[int],
        decision: dict,
        object_id: int,
        size: int,
        now: float,
        *,
        came_from: Optional[int] = None,
    ) -> Tuple[bool, int]:
        """One downstream stop: advance the accumulator, apply the decision.

        The accumulator (``decision["acc"]``) grows by the cost of the
        link the object just traversed; an instructed node inserts the
        copy (resetting the accumulator), every other node refreshes or
        creates its d-cache descriptor.  Mutates ``decision`` in place --
        it is the response message's walk state.

        When upstream failover bypassed dead hops, ``came_from`` names
        the path index the response really arrived from and the
        accumulator grows by the cost of the whole physical segment
        ``path[index..came_from]`` -- the object still crossed every
        link through the dead node's router, only its cache process was
        down.  With the default ``came_from = index + 1`` this is
        exactly the single-link cost, so fault-free runs are
        bit-identical to :meth:`process_request`.
        """
        node = path[index]
        upstream = index + 1 if came_from is None else came_from
        accumulator = decision["acc"] + self.cost_model.path_cost(
            path[index : upstream + 1], size
        )
        state = self.node_state(node)
        inserted = False
        evictions = 0
        if node in decision["cache_at"]:
            evicted = state.insert_object(object_id, size, accumulator, now)
            if evicted is not None:
                inserted = True
                evictions = len(evicted)
                accumulator = 0.0
        else:
            state.ensure_dcache_descriptor(object_id, size, accumulator, now)
        decision["acc"] = accumulator
        return inserted, evictions

    def _downstream_walk(
        self,
        path: Sequence[int],
        hit_index: int,
        response: ResponseEnvelope,
        size: int,
        now: float,
    ) -> Tuple[List[int], int]:
        """Phase 3: deliver the object, updating caches and penalties."""
        object_id = response.object_id
        inserted: List[int] = []
        evictions = 0
        decision = {"cache_at": response.cache_at, "acc": 0.0}
        for i in range(hit_index - 1, -1, -1):
            did_insert, victims = self.deliver_step(
                i, path, decision, object_id, size, now
            )
            if did_insert:
                inserted.append(path[i])
                evictions += victims
        return inserted, evictions

    def _count_protocol(
        self,
        envelope: RequestEnvelope,
        response: ResponseEnvelope,
        hit_index: int,
    ) -> None:
        """Charge one request's piggyback records to the overhead counters."""
        stats = self.protocol_stats
        stats.requests += 1
        stats.reports += sum(1 for r in envelope.reports if r.has_descriptor)
        stats.no_descriptor_tags += sum(
            1 for r in envelope.reports if not r.has_descriptor
        )
        stats.decisions += len(response.cache_at)
        if hit_index > 0:
            stats.responses_with_accumulator += 1

    def _observe_protocol(
        self,
        instruments,
        path: Sequence[int],
        hit_index: int,
        envelope: RequestEnvelope,
        response: ResponseEnvelope,
        inserted: Sequence[int],
        now: float,
    ) -> None:
        """Per-node piggyback byte accounting + the placement event.

        Splits the exact quantities :meth:`ProtocolStats.overhead_bytes`
        totals globally across the nodes that carried them: each report
        (or "no descriptor" tag) is charged to the node that appended
        it, each decision entry to the node it instructs, and the
        response's cost accumulator to the first downstream carrier (see
        ``docs/protocol.md``).  Purely observational.
        """
        registry = instruments.registry
        if registry is not None:
            add = registry.add_piggyback
            for report in envelope.reports:
                add(
                    report.node,
                    REPORT_BYTES if report.has_descriptor else TAG_BYTES,
                )
            for node in response.cache_at:
                add(node, DECISION_BYTES)
            if hit_index > 0:
                add(path[hit_index - 1], ACCUMULATOR_BYTES)
        candidates = [r.node for r in envelope.reports if r.is_candidate()]
        if candidates:
            self._emit_placement(
                now,
                envelope.object_id,
                path,
                hit_index,
                candidates,
                sorted(response.cache_at),
                inserted,
                gain=response.expected_gain,
            )

    # -- scheme interface --------------------------------------------------------

    def process_request(
        self, path: Sequence[int], object_id: int, size: int, now: float
    ) -> RequestOutcome:
        hit_index, envelope = self._upstream_walk(path, object_id, size, now)
        response = self.decide_placement(envelope, now)
        inserted, evictions = self._downstream_walk(
            path, hit_index, response, size, now
        )
        self._count_protocol(envelope, response, hit_index)
        instruments = self._instruments
        if instruments is not None:
            self._observe_protocol(
                instruments, path, hit_index, envelope, response, inserted, now
            )
        return RequestOutcome(
            path=path,
            hit_index=hit_index,
            size=size,
            inserted_nodes=tuple(inserted),
            evicted_objects=evictions,
        )
