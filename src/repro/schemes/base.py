"""Scheme interface and the shared cascaded request walk.

A *scheme* owns the cache state of every node and decides, per request,
where the object ends up cached (the placement problem) and what gets
evicted (the replacement problem).  The simulator hands a scheme the full
delivery path ``[client_node, ..., server_node]`` (a branch of the origin
server's distribution tree) and the scheme returns a
:class:`RequestOutcome` from which all of the paper's metrics derive.

Convention: every node on the path except the last (the origin-server
attachment) hosts a cache.  Caching at the server's own node would save
nothing (the object is locally available at cost 0), and the paper's model
likewise places ``A_0`` outside the candidate set.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache.base import Cache, CacheTooSmallError
from repro.cache.descriptors import ObjectDescriptor
from repro.costs.model import CostModel


@dataclass(frozen=True)
class RequestOutcome:
    """What happened to one request.

    ``hit_index`` indexes into ``path``: the serving node is
    ``path[hit_index]``; a value of ``len(path) - 1`` means the origin
    server satisfied the request.  ``bytes_written`` counts one object size
    per cache insertion performed; ``bytes_read`` counts the read at the
    serving cache (zero on an origin hit) -- together these are the paper's
    aggregate cache read/write load per request (section 4.1).
    """

    path: Sequence[int]
    hit_index: int
    size: int
    inserted_nodes: tuple = ()
    evicted_objects: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.hit_index < len(self.path):
            raise ValueError("hit_index out of path range")

    @property
    def served_by_cache(self) -> bool:
        return self.hit_index < len(self.path) - 1

    @property
    def hops(self) -> int:
        """Links traversed by the request before hitting the object."""
        return self.hit_index

    @property
    def bytes_read(self) -> int:
        return self.size if self.served_by_cache else 0

    @property
    def bytes_written(self) -> int:
        return self.size * len(self.inserted_nodes)


class CachingScheme(abc.ABC):
    """Base class for all cache-management schemes.

    Subclasses provide :meth:`_new_cache` (the per-node cache construction)
    and :meth:`process_request`.  Node caches are created lazily the first
    time a path touches the node, each with ``capacity_bytes``.
    """

    name: str = "abstract"

    def __init__(
        self,
        cost_model: CostModel,
        capacity_bytes: int,
        capacity_overrides: Dict[int, int] | None = None,
    ) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        if capacity_overrides and any(
            c < 0 for c in capacity_overrides.values()
        ):
            raise ValueError("capacity overrides must be non-negative")
        self.cost_model = cost_model
        self.capacity_bytes = capacity_bytes
        self.capacity_overrides = dict(capacity_overrides or {})
        self._caches: Dict[int, Cache] = {}
        # Instrumentation bundle (repro.obs.instruments.Instruments),
        # attached by the engine on instrumented runs; None otherwise.
        self._instruments = None

    @abc.abstractmethod
    def _new_cache(self, node: int) -> Cache:
        """Construct the cache for one node."""

    @abc.abstractmethod
    def process_request(
        self, path: Sequence[int], object_id: int, size: int, now: float
    ) -> RequestOutcome:
        """Serve one request along ``path`` and update cache contents."""

    # -- shared helpers ------------------------------------------------------

    def capacity_for(self, node: int) -> int:
        """The node's cache capacity: the uniform default or an override.

        Heterogeneous provisioning (e.g. bigger caches higher up a
        hierarchy) is an extension beyond the paper, which sizes every
        cache equally (section 3.2).
        """
        return self.capacity_overrides.get(node, self.capacity_bytes)

    def attach_instruments(self, instruments) -> None:
        """Wire an :class:`~repro.obs.instruments.Instruments` bundle in.

        Installs a per-node cache observer on every cache materialized so
        far; caches created later are wired at creation.  Attaching
        ``None`` detaches.  Purely observational -- an instrumented run's
        decisions and metrics are bit-identical to an uninstrumented one.
        """
        self._instruments = instruments
        for node, cache in self._caches.items():
            cache.observer = (
                instruments.cache_observer(node)
                if instruments is not None
                else None
            )

    def _wire_cache(self, node: int, cache: Cache) -> None:
        """Give a newly created cache its observer, if instrumented."""
        if self._instruments is not None:
            cache.observer = self._instruments.cache_observer(node)

    def _emit_placement(
        self,
        now: float,
        object_id: int,
        path: Sequence[int],
        hit_index: int,
        candidates: Sequence[int],
        chosen: Sequence[int],
        inserted: Sequence[int],
        gain: float = 0.0,
    ) -> None:
        """Emit one ``placement`` event (candidate set, decision, result).

        ``chosen`` is what the scheme's placement rule selected;
        ``inserted`` what actually landed (insertions can be refused by
        :class:`~repro.cache.base.CacheTooSmallError`).  No-op unless a
        probe is attached and sampling passes.
        """
        instruments = self._instruments
        if instruments is None:
            return
        probe = instruments.probe
        if probe is None or not probe.sample("placement"):
            return
        probe.write(
            "placement",
            i=instruments.request_index,
            t=now,
            object=object_id,
            hit_node=path[hit_index],
            origin=hit_index == len(path) - 1,
            candidates=list(candidates),
            chosen=list(chosen),
            inserted=list(inserted),
            gain=gain,
        )

    # -- per-node protocol steps ---------------------------------------------
    #
    # The live serving layer (:mod:`repro.serve`) runs every cache node as
    # its own server, so request handling must decompose into node-local
    # steps: an upstream *lookup* at each node the request passes, one
    # placement *decision* at the serving node, and a downstream *deliver*
    # step at each node the response passes.  The defaults below cover the
    # walk-and-insert family (LRU, LFU, GDS, MODULO, admission-LRU) through
    # two small hooks -- :meth:`_placement_indices` (which on-path nodes
    # should store a copy) and :meth:`_insert_at` (how one node inserts) --
    # the same hooks ``process_request`` uses, so the simulated and the
    # served protocol cannot drift apart.  Schemes that piggyback state on
    # the request (the coordinated scheme) override the steps wholesale.
    #
    # Contract: running, for one request,
    #
    #   ``lookup_step`` on ``path[0..k]`` until the first hit ``k``,
    #   ``decide_step`` at ``path[k]`` with the reports collected so far,
    #   ``deliver_step`` on ``path[k-1], ..., path[0]`` (mutating the
    #   decision in place where the scheme carries response state),
    #
    # must mutate per-node cache state exactly as one
    # :meth:`process_request` call for the same request does.  The
    # equivalence is pinned by the simulator-vs-cluster differential
    # oracle in ``tests/test_serve_cluster.py``.

    def lookup_step(
        self, node: int, object_id: int, size: int, now: float
    ) -> Tuple[bool, Optional[object]]:
        """Upstream step at one on-path cache node.

        Performs the node-local lookup plus whatever bookkeeping the
        scheme does while a request passes (recency touches, d-cache
        reference counting).  Returns ``(hit, report)`` where ``report``
        is the scheme's piggyback contribution for the request message
        (``None`` for schemes that piggyback nothing).
        """
        return self.cache_at(node).access(object_id, now) is not None, None

    def decide_step(
        self,
        path: Sequence[int],
        hit_index: int,
        reports: Sequence[object],
        object_id: int,
        size: int,
        now: float,
    ) -> dict:
        """Placement decision at the serving node (or the origin).

        ``reports`` holds the piggybacked per-node reports collected on
        the upstream walk, in travel order.  Returns a JSON-able decision
        payload shipped back with the object; the base implementation
        instructs every node :meth:`_placement_indices` selects.
        """
        return {
            "cache_at": [path[i] for i in self._placement_indices(path, hit_index)]
        }

    def deliver_step(
        self,
        index: int,
        path: Sequence[int],
        decision: dict,
        object_id: int,
        size: int,
        now: float,
        *,
        came_from: Optional[int] = None,
    ) -> Tuple[bool, int]:
        """Response step at ``path[index]`` (strictly below the serving node).

        Applies the shipped placement decision at one node; returns
        ``(inserted, evictions)``.  Schemes carrying response-path state
        (the coordinated cost accumulator) mutate ``decision`` in place.

        ``came_from`` is the path index the response physically arrived
        from -- normally ``index + 1``, but further up when upstream
        failover bypassed dead hops.  The response then traversed the
        whole physical segment ``path[index..came_from]`` (the bypassed
        node's cache process is down; its router still forwards), and
        cost-carrying schemes must advance their accumulator over that
        segment, not a single link.
        """
        node = path[index]
        if node not in decision["cache_at"]:
            return False, 0
        if not self._admit(node, object_id):
            return False, 0
        evicted = self._insert_at(index, path, object_id, size, now)
        if evicted is None:
            return False, 0
        return True, len(evicted)

    def invalidate_step(self, node: int, object_id: int) -> int:
        """Drop one node's copy of an object (push invalidation).

        The per-node split of :meth:`invalidate_object`; returns the
        number of copies removed (0 or 1).
        """
        cache = self._caches.get(node)
        if cache is not None and cache.remove(object_id) is not None:
            return 1
        return 0

    # -- placement/insertion hooks shared by both request paths --------------

    def _placement_indices(
        self, path: Sequence[int], hit_index: int
    ) -> List[int]:
        """Path indices (strictly below the serving node) that store a copy."""
        return list(range(hit_index))

    def _admit(self, node: int, object_id: int) -> bool:
        """Admission filter hook; the default admits everything."""
        return True

    def _insert_at(
        self, index: int, path: Sequence[int], object_id: int, size: int, now: float
    ) -> Optional[List]:
        """Insert a copy at ``path[index]``; ``None`` when the cache refuses.

        Returns the (possibly empty) list of evicted entries otherwise.
        The default is the LRU-family insertion: a fresh descriptor, no
        miss-penalty bookkeeping.
        """
        cache = self.cache_at(path[index])
        try:
            return cache.insert(ObjectDescriptor(object_id, size), now)
        except CacheTooSmallError:
            return None

    def cache_at(self, node: int) -> Cache:
        """The node's cache, created on first use."""
        cache = self._caches.get(node)
        if cache is None:
            cache = self._new_cache(node)
            self._caches[node] = cache
            self._wire_cache(node, cache)
        return cache

    def caches(self) -> Dict[int, Cache]:
        """All materialized node caches (read-only use)."""
        return self._caches

    def has_object(self, node: int, object_id: int) -> bool:
        """Whether the node currently caches the object (no state change)."""
        cache = self._caches.get(node)
        return cache is not None and object_id in cache

    def _find_hit(
        self, path: Sequence[int], object_id: int, now: float
    ) -> int:
        """Walk upstream; return the index of the lowest node with the object.

        Touches policy state (recency etc.) only at the hit node.  Returns
        ``len(path) - 1`` when only the origin has it.
        """
        last = len(path) - 1
        for i in range(last):
            if self.cache_at(path[i]).access(object_id, now) is not None:
                return i
        return last

    def invalidate_object(self, object_id: int) -> int:
        """Drop every cached copy of an object (server invalidation).

        Extension beyond the paper, which assumes a coherency protocol
        keeps copies fresh (section 2): an origin-side update invalidates
        all replicas.  Returns the number of copies removed.
        """
        removed = 0
        for cache in self._caches.values():
            if cache.remove(object_id) is not None:
                removed += 1
        return removed

    def total_cached_bytes(self) -> int:
        return sum(cache.used_bytes for cache in self._caches.values())

    def check_invariants(self) -> None:
        for cache in self._caches.values():
            cache.check_invariants()
