"""Scheme interface and the shared cascaded request walk.

A *scheme* owns the cache state of every node and decides, per request,
where the object ends up cached (the placement problem) and what gets
evicted (the replacement problem).  The simulator hands a scheme the full
delivery path ``[client_node, ..., server_node]`` (a branch of the origin
server's distribution tree) and the scheme returns a
:class:`RequestOutcome` from which all of the paper's metrics derive.

Convention: every node on the path except the last (the origin-server
attachment) hosts a cache.  Caching at the server's own node would save
nothing (the object is locally available at cost 0), and the paper's model
likewise places ``A_0`` outside the candidate set.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Sequence

from repro.cache.base import Cache
from repro.costs.model import CostModel


@dataclass(frozen=True)
class RequestOutcome:
    """What happened to one request.

    ``hit_index`` indexes into ``path``: the serving node is
    ``path[hit_index]``; a value of ``len(path) - 1`` means the origin
    server satisfied the request.  ``bytes_written`` counts one object size
    per cache insertion performed; ``bytes_read`` counts the read at the
    serving cache (zero on an origin hit) -- together these are the paper's
    aggregate cache read/write load per request (section 4.1).
    """

    path: Sequence[int]
    hit_index: int
    size: int
    inserted_nodes: tuple = ()
    evicted_objects: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.hit_index < len(self.path):
            raise ValueError("hit_index out of path range")

    @property
    def served_by_cache(self) -> bool:
        return self.hit_index < len(self.path) - 1

    @property
    def hops(self) -> int:
        """Links traversed by the request before hitting the object."""
        return self.hit_index

    @property
    def bytes_read(self) -> int:
        return self.size if self.served_by_cache else 0

    @property
    def bytes_written(self) -> int:
        return self.size * len(self.inserted_nodes)


class CachingScheme(abc.ABC):
    """Base class for all cache-management schemes.

    Subclasses provide :meth:`_new_cache` (the per-node cache construction)
    and :meth:`process_request`.  Node caches are created lazily the first
    time a path touches the node, each with ``capacity_bytes``.
    """

    name: str = "abstract"

    def __init__(
        self,
        cost_model: CostModel,
        capacity_bytes: int,
        capacity_overrides: Dict[int, int] | None = None,
    ) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        if capacity_overrides and any(
            c < 0 for c in capacity_overrides.values()
        ):
            raise ValueError("capacity overrides must be non-negative")
        self.cost_model = cost_model
        self.capacity_bytes = capacity_bytes
        self.capacity_overrides = dict(capacity_overrides or {})
        self._caches: Dict[int, Cache] = {}
        # Instrumentation bundle (repro.obs.instruments.Instruments),
        # attached by the engine on instrumented runs; None otherwise.
        self._instruments = None

    @abc.abstractmethod
    def _new_cache(self, node: int) -> Cache:
        """Construct the cache for one node."""

    @abc.abstractmethod
    def process_request(
        self, path: Sequence[int], object_id: int, size: int, now: float
    ) -> RequestOutcome:
        """Serve one request along ``path`` and update cache contents."""

    # -- shared helpers ------------------------------------------------------

    def capacity_for(self, node: int) -> int:
        """The node's cache capacity: the uniform default or an override.

        Heterogeneous provisioning (e.g. bigger caches higher up a
        hierarchy) is an extension beyond the paper, which sizes every
        cache equally (section 3.2).
        """
        return self.capacity_overrides.get(node, self.capacity_bytes)

    def attach_instruments(self, instruments) -> None:
        """Wire an :class:`~repro.obs.instruments.Instruments` bundle in.

        Installs a per-node cache observer on every cache materialized so
        far; caches created later are wired at creation.  Attaching
        ``None`` detaches.  Purely observational -- an instrumented run's
        decisions and metrics are bit-identical to an uninstrumented one.
        """
        self._instruments = instruments
        for node, cache in self._caches.items():
            cache.observer = (
                instruments.cache_observer(node)
                if instruments is not None
                else None
            )

    def _wire_cache(self, node: int, cache: Cache) -> None:
        """Give a newly created cache its observer, if instrumented."""
        if self._instruments is not None:
            cache.observer = self._instruments.cache_observer(node)

    def _emit_placement(
        self,
        now: float,
        object_id: int,
        path: Sequence[int],
        hit_index: int,
        candidates: Sequence[int],
        chosen: Sequence[int],
        inserted: Sequence[int],
        gain: float = 0.0,
    ) -> None:
        """Emit one ``placement`` event (candidate set, decision, result).

        ``chosen`` is what the scheme's placement rule selected;
        ``inserted`` what actually landed (insertions can be refused by
        :class:`~repro.cache.base.CacheTooSmallError`).  No-op unless a
        probe is attached and sampling passes.
        """
        instruments = self._instruments
        if instruments is None:
            return
        probe = instruments.probe
        if probe is None or not probe.sample("placement"):
            return
        probe.write(
            "placement",
            i=instruments.request_index,
            t=now,
            object=object_id,
            hit_node=path[hit_index],
            origin=hit_index == len(path) - 1,
            candidates=list(candidates),
            chosen=list(chosen),
            inserted=list(inserted),
            gain=gain,
        )

    def cache_at(self, node: int) -> Cache:
        """The node's cache, created on first use."""
        cache = self._caches.get(node)
        if cache is None:
            cache = self._new_cache(node)
            self._caches[node] = cache
            self._wire_cache(node, cache)
        return cache

    def caches(self) -> Dict[int, Cache]:
        """All materialized node caches (read-only use)."""
        return self._caches

    def has_object(self, node: int, object_id: int) -> bool:
        """Whether the node currently caches the object (no state change)."""
        cache = self._caches.get(node)
        return cache is not None and object_id in cache

    def _find_hit(
        self, path: Sequence[int], object_id: int, now: float
    ) -> int:
        """Walk upstream; return the index of the lowest node with the object.

        Touches policy state (recency etc.) only at the hit node.  Returns
        ``len(path) - 1`` when only the origin has it.
        """
        last = len(path) - 1
        for i in range(last):
            if self.cache_at(path[i]).access(object_id, now) is not None:
                return i
        return last

    def invalidate_object(self, object_id: int) -> int:
        """Drop every cached copy of an object (server invalidation).

        Extension beyond the paper, which assumes a coherency protocol
        keeps copies fresh (section 2): an origin-side update invalidates
        all replicas.  Returns the number of copies removed.
        """
        removed = 0
        for cache in self._caches.values():
            if cache.remove(object_id) is not None:
                removed += 1
        return removed

    def total_cached_bytes(self) -> int:
        return sum(cache.used_bytes for cache in self._caches.values())

    def check_invariants(self) -> None:
        for cache in self._caches.values():
            cache.check_invariants()
