"""Online adaptive placement [Ioannidis & Yeh 2016, PAPERS.md].

"Adaptive Caching Networks with Optimality Guarantees" replaces offline
placement optimization with an online loop: nodes maintain marginal-gain
state estimated from the requests they observe, placement decisions hill
climb on that state, and the state itself is corrected by a damped
(sub)gradient step taken on the response path.

This scheme maps that loop onto the paper's piggyback protocol so it
rides the exact same wire accounting as the coordinated DP:

* **State.**  Each node's per-object descriptor (frequency estimate,
  miss penalty) *is* the marginal-gain state; it is refreshed by every
  observed request exactly as in the coordinated scheme.
* **Decision.**  The serving node runs :func:`~repro.core.placement.
  greedy_placement` -- deterministic hill climbing on the same
  n-optimization objective -- instead of the exact dynamic program.  The
  greedy solution never exceeds the DP optimum, and the audit layer's
  :class:`~repro.verify.oracles.PlacementOracle` measures the realised
  adaptive-vs-DP gap on every sampled problem.
* **Subgradient step.**  On the downstream walk, instead of overwriting
  a node's stored miss penalty with the response's cost accumulator, the
  penalty moves a fraction ``step_size`` towards it::

      p  <-  p + step_size * (acc - p)

  i.e. a damped stochastic-approximation update driven by the observed
  per-delivery cost sample.  ``step_size=1.0`` recovers the coordinated
  scheme's hard assignment.

Everything else -- the upstream report walk, the d-cache descriptor
migration, invalidation, protocol-overhead counters -- is inherited
unchanged, so the scheme runs in the simulator, the columnar generic
loop, and the live cluster without engine changes.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.coordinated import CoordinatedScheme
from repro.core.placement import greedy_placement


class AdaptiveScheme(CoordinatedScheme):
    """Greedy online placement with damped miss-penalty updates."""

    name = "adaptive"

    _solver = staticmethod(greedy_placement)

    def __init__(self, *args, step_size: float = 0.5, **kwargs) -> None:
        if not 0.0 < step_size <= 1.0:
            raise ValueError("step_size must be in (0, 1]")
        super().__init__(*args, **kwargs)
        self.step_size = step_size

    def deliver_step(
        self,
        index: int,
        path: Sequence[int],
        decision: dict,
        object_id: int,
        size: int,
        now: float,
        *,
        came_from: Optional[int] = None,
    ) -> Tuple[bool, int]:
        """Downstream stop with the damped subgradient penalty update.

        The cost accumulator advances exactly as in the coordinated
        scheme (including the failover segment rule via ``came_from``),
        but the penalty written into the node's descriptor is the damped
        blend of the old estimate and the fresh cost sample rather than
        the sample itself.  A node with no prior descriptor adopts the
        sample outright (there is no estimate to damp).
        """
        node = path[index]
        upstream = index + 1 if came_from is None else came_from
        accumulator = decision["acc"] + self.cost_model.path_cost(
            path[index : upstream + 1], size
        )
        state = self.node_state(node)
        existing = state.descriptor(object_id)
        if existing is None:
            penalty = accumulator
        else:
            penalty = existing.miss_penalty + self.step_size * (
                accumulator - existing.miss_penalty
            )
        inserted = False
        evictions = 0
        if node in decision["cache_at"]:
            evicted = state.insert_object(object_id, size, penalty, now)
            if evicted is not None:
                inserted = True
                evictions = len(evicted)
                accumulator = 0.0
        else:
            state.ensure_dcache_descriptor(object_id, size, penalty, now)
        decision["acc"] = accumulator
        return inserted, evictions
