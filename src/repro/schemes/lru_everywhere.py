"""The LRU baseline: cache everywhere, evict least-recently-used.

Paper section 3.3: "The requested object is cached by every node through
which the object passes.  If there is not enough free space, the cache
purges one or more least recently referenced objects."  No d-cache is
used.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.cache.base import Cache, CacheTooSmallError
from repro.cache.lru import LRUCache
from repro.cache.descriptors import ObjectDescriptor
from repro.schemes.base import CachingScheme, RequestOutcome


class LRUEverywhereScheme(CachingScheme):
    """Place at every on-path cache below the serving node; LRU replacement."""

    name = "lru"

    def _new_cache(self, node: int) -> Cache:
        return LRUCache(self.capacity_for(node))

    def _placement_indices(
        self, path: Sequence[int], hit_index: int
    ) -> List[int]:
        """Path indices (strictly below the serving node) that store a copy."""
        return list(range(hit_index))

    def process_request(
        self, path: Sequence[int], object_id: int, size: int, now: float
    ) -> RequestOutcome:
        hit_index = self._find_hit(path, object_id, now)
        inserted: List[int] = []
        evictions = 0
        placement = self._placement_indices(path, hit_index)
        for i in placement:
            node = path[i]
            cache = self.cache_at(node)
            try:
                evicted = cache.insert(ObjectDescriptor(object_id, size), now)
            except CacheTooSmallError:
                continue
            inserted.append(node)
            evictions += len(evicted)
        if self._instruments is not None and placement:
            chosen = [path[i] for i in placement]
            self._emit_placement(
                now, object_id, path, hit_index, chosen, chosen, inserted
            )
        return RequestOutcome(
            path=path,
            hit_index=hit_index,
            size=size,
            inserted_nodes=tuple(inserted),
            evicted_objects=evictions,
        )
