"""The LRU baseline: cache everywhere, evict least-recently-used.

Paper section 3.3: "The requested object is cached by every node through
which the object passes.  If there is not enough free space, the cache
purges one or more least recently referenced objects."  No d-cache is
used.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.cache.base import Cache
from repro.cache.lru import LRUCache
from repro.schemes.base import CachingScheme, RequestOutcome


class LRUEverywhereScheme(CachingScheme):
    """Place at every on-path cache below the serving node; LRU replacement.

    Placement (:meth:`_placement_indices`, everything below the hit) and
    insertion (:meth:`_insert_at`, fresh-descriptor LRU insert) are the
    base-class hooks, so the per-node protocol steps of the live serving
    layer replay exactly this scheme.
    """

    name = "lru"

    def _new_cache(self, node: int) -> Cache:
        return LRUCache(self.capacity_for(node))

    def process_request(
        self, path: Sequence[int], object_id: int, size: int, now: float
    ) -> RequestOutcome:
        hit_index = self._find_hit(path, object_id, now)
        inserted: List[int] = []
        evictions = 0
        placement = self._placement_indices(path, hit_index)
        for i in placement:
            evicted = self._insert_at(i, path, object_id, size, now)
            if evicted is None:
                continue
            inserted.append(path[i])
            evictions += len(evicted)
        if self._instruments is not None and placement:
            chosen = [path[i] for i in placement]
            self._emit_placement(
                now, object_id, path, hit_index, chosen, chosen, inserted
            )
        return RequestOutcome(
            path=path,
            hit_index=hit_index,
            size=size,
            inserted_nodes=tuple(inserted),
            evicted_objects=evictions,
        )
