"""The LNC-R baseline [Scheuermann, Shim & Vingralek 1997].

Paper section 3.3: a cost-based *replacement* algorithm effective for a
single web cache -- evict objects with the least normalized cost loss
``f(O) * m(O) / s(O)``.  Placement is not optimized: like LRU, the object
is cached at every node on the delivery path, and each node takes the
object's miss penalty to be the cost of its immediate upstream link.
Descriptors of objects not in the main cache live in the node's d-cache
for better frequency estimation.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.schemes.base import RequestOutcome
from repro.schemes.descriptor_scheme import DescriptorSchemeBase


class LNCRScheme(DescriptorSchemeBase):
    """Cache everywhere; evict by least normalized cost loss."""

    name = "lnc-r"

    def lookup_step(self, node: int, object_id: int, size: int, now: float):
        """One upstream stop: record the reference, then check for a hit.

        LNC-R touches the node's descriptor (main cache or d-cache) on
        every pass -- including at the node that turns out to serve --
        so the reference is recorded before the hit check.
        """
        state = self.node_state(node)
        state.record_request(object_id, now)
        return object_id in state.cache, None

    def _insert_at(
        self, index: int, path: Sequence[int], object_id: int, size: int, now: float
    ):
        """Insert with miss penalty = cost of the immediate upstream link."""
        upstream_cost = self.cost_model.link_cost(
            path[index], path[index + 1], size
        )
        return self.node_state(path[index]).insert_object(
            object_id, size, upstream_cost, now
        )

    def process_request(
        self, path: Sequence[int], object_id: int, size: int, now: float
    ) -> RequestOutcome:
        # Upstream walk: find the serving node, recording a reference on
        # every descriptor the request passes (main cache or d-cache).
        last = len(path) - 1
        hit_index = last
        for i in range(last):
            hit, _ = self.lookup_step(path[i], object_id, size, now)
            if hit:
                hit_index = i
                break

        # Downstream walk: insert everywhere below the serving node with
        # miss penalty = cost of the immediate upstream link.
        inserted: List[int] = []
        evictions = 0
        for i in range(hit_index - 1, -1, -1):
            evicted = self._insert_at(i, path, object_id, size, now)
            if evicted is None:
                continue
            inserted.append(path[i])
            evictions += len(evicted)
        if self._instruments is not None and hit_index > 0:
            chosen = [path[i] for i in range(hit_index)]
            self._emit_placement(
                now, object_id, path, hit_index, chosen, chosen, inserted
            )
        return RequestOutcome(
            path=path,
            hit_index=hit_index,
            size=size,
            inserted_nodes=tuple(inserted),
            evicted_objects=evictions,
        )
