"""The LNC-R baseline [Scheuermann, Shim & Vingralek 1997].

Paper section 3.3: a cost-based *replacement* algorithm effective for a
single web cache -- evict objects with the least normalized cost loss
``f(O) * m(O) / s(O)``.  Placement is not optimized: like LRU, the object
is cached at every node on the delivery path, and each node takes the
object's miss penalty to be the cost of its immediate upstream link.
Descriptors of objects not in the main cache live in the node's d-cache
for better frequency estimation.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.schemes.base import RequestOutcome
from repro.schemes.descriptor_scheme import DescriptorSchemeBase


class LNCRScheme(DescriptorSchemeBase):
    """Cache everywhere; evict by least normalized cost loss."""

    name = "lnc-r"

    def process_request(
        self, path: Sequence[int], object_id: int, size: int, now: float
    ) -> RequestOutcome:
        # Upstream walk: find the serving node, recording a reference on
        # every descriptor the request passes (main cache or d-cache).
        last = len(path) - 1
        hit_index = last
        for i in range(last):
            state = self.node_state(path[i])
            state.record_request(object_id, now)
            if object_id in state.cache:
                hit_index = i
                break

        # Downstream walk: insert everywhere below the serving node with
        # miss penalty = cost of the immediate upstream link.
        inserted: List[int] = []
        evictions = 0
        for i in range(hit_index - 1, -1, -1):
            node = path[i]
            upstream_cost = self.cost_model.link_cost(path[i], path[i + 1], size)
            state = self.node_state(node)
            evicted = state.insert_object(object_id, size, upstream_cost, now)
            if evicted is None:
                continue
            inserted.append(node)
            evictions += len(evicted)
        if self._instruments is not None and hit_index > 0:
            chosen = [path[i] for i in range(hit_index)]
            self._emit_placement(
                now, object_id, path, hit_index, chosen, chosen, inserted
            )
        return RequestOutcome(
            path=path,
            hit_index=hit_index,
            size=size,
            inserted_nodes=tuple(inserted),
            evicted_objects=evictions,
        )
