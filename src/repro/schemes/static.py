"""A static (pre-provisioned) placement scheme.

Holds a fixed assignment of object copies to caches and never changes it:
no insertions, no evictions.  Useful as the evaluation vehicle for
*offline* placement plans (e.g. the tree-DP oracle in
:mod:`repro.analysis.static_plan`) and as a degenerate baseline.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

from repro.cache.base import Cache
from repro.cache.descriptors import ObjectDescriptor
from repro.cache.lru import LRUCache
from repro.costs.model import CostModel
from repro.schemes.base import CachingScheme, RequestOutcome
from repro.workload.catalog import ObjectCatalog


class StaticPlacementScheme(CachingScheme):
    """Serve requests from a fixed placement; cache contents never change."""

    name = "static"

    def __init__(
        self,
        cost_model: CostModel,
        capacity_bytes: int,
        placements: Dict[int, Iterable[int]],
        catalog: ObjectCatalog,
        enforce_capacity: bool = True,
    ) -> None:
        super().__init__(cost_model, capacity_bytes)
        for node, object_ids in placements.items():
            cache = self.cache_at(node)
            for object_id in object_ids:
                descriptor = ObjectDescriptor(object_id, catalog.size(object_id))
                if enforce_capacity and descriptor.size > cache.free_bytes:
                    raise ValueError(
                        f"placement overflows node {node}: object {object_id} "
                        f"needs {descriptor.size} B, {cache.free_bytes} B free"
                    )
                cache.insert(descriptor, now=0.0)

    def _new_cache(self, node: int) -> Cache:
        # Replacement never runs; any concrete cache type will do.
        return LRUCache(self.capacity_for(node))

    def process_request(
        self, path: Sequence[int], object_id: int, size: int, now: float
    ) -> RequestOutcome:
        hit_index = self._find_hit(path, object_id, now)
        return RequestOutcome(path=path, hit_index=hit_index, size=size)
