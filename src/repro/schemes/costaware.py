"""Cost-aware single-copy placement [Araldo, Rossi & Martignon, PAPERS.md].

"Cost-aware caching: Caching more (costs less) than less (costs more)"
argues that a cache hierarchy should place copies where they save the
most *retrieval cost*, not merely where they raise hit ratio -- and that
placement interacts with how capacity is provisioned across levels.

This scheme keeps the paper's piggyback protocol (upstream reports of
``(f_i, m_i, l_i)`` per node, a downstream decision + cost accumulator)
but replaces the dynamic program with the cost-aware rule: per delivery,
cache **at most one** new copy, at the position with the largest net
retrieval-cost saving ``f_i * m_i - l_i`` (the single-placement value of
the same n-optimization objective).  Caching fewer copies leaves room
for more distinct objects, trading copy redundancy for catalogue
coverage -- the "cache less for more" effect.

The provisioning axis is exposed by the experiment layer: ``repro sweep
--provision`` reallocates a fixed total capacity budget across tree
levels (see :func:`repro.sim.architecture.level_capacity_overrides` and
:func:`repro.experiments.sweeps.run_provisioning_sweep`) so joint
placement + sizing comparisons land in the same warehouse tables as
fixed-size runs.
"""

from __future__ import annotations

from repro.core.coordinated import CoordinatedScheme
from repro.core.placement import PlacementProblem, PlacementSolution


def single_copy_placement(problem: PlacementProblem) -> PlacementSolution:
    """Best single-position placement (deterministic, server-side wins ties).

    Evaluates ``objective((i,))`` for every candidate position and keeps
    the strictly best strictly-positive one; placing nothing is the
    correct answer when no single copy pays for its eviction loss.
    """
    best_gain = 0.0
    best = -1
    for i in range(problem.num_nodes):
        gain = problem.objective((i,))
        if gain > best_gain:
            best_gain = gain
            best = i
    indices = (best,) if best >= 0 else ()
    return PlacementSolution(indices=indices, gain=best_gain, method="single")


class CostAwareScheme(CoordinatedScheme):
    """Piggybacked placement capped at one cost-optimal copy per delivery."""

    name = "costaware"

    _solver = staticmethod(single_copy_placement)
