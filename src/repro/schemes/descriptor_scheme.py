"""Shared base for descriptor-driven schemes (LNC-R, Coordinated).

Owns the per-node :class:`~repro.schemes.node_state.DescriptorNode` map
(main NCL cache + d-cache) and descriptor-aware invalidation: dropping a
copy keeps its access statistics by moving the descriptor to the d-cache.
"""

from __future__ import annotations

from typing import Dict

from repro.cache.base import Cache
from repro.costs.model import CostModel
from repro.schemes.base import CachingScheme
from repro.schemes.node_state import DescriptorNode


class DescriptorSchemeBase(CachingScheme):
    """Scheme whose nodes pair an NCL main cache with a d-cache."""

    def __init__(
        self,
        cost_model: CostModel,
        capacity_bytes: int,
        dcache_entries: int,
        dcache_policy: str = "lfu",
        ncl_structure: str = "list",
        capacity_overrides: dict | None = None,
    ) -> None:
        super().__init__(cost_model, capacity_bytes, capacity_overrides)
        if dcache_entries < 0:
            raise ValueError("dcache_entries must be non-negative")
        self.dcache_entries = dcache_entries
        self.dcache_policy = dcache_policy
        self.ncl_structure = ncl_structure
        self._nodes: Dict[int, DescriptorNode] = {}

    def node_state(self, node: int) -> DescriptorNode:
        """The node's cache/d-cache pair, created on first use."""
        state = self._nodes.get(node)
        if state is None:
            state = DescriptorNode(
                self.capacity_for(node),
                self.dcache_entries,
                self.dcache_policy,
                self.ncl_structure,
            )
            self._nodes[node] = state
            # Register the main cache with the base-class map so shared
            # helpers (_find_hit, has_object, invariants) see it.
            self._caches[node] = state.cache
            self._wire_cache(node, state.cache)
            if self._instruments is not None:
                state.dcache.observer = self._instruments.dcache_observer(node)
        return state

    def attach_instruments(self, instruments) -> None:
        """Wire main caches (via the base class) and d-caches alike."""
        super().attach_instruments(instruments)
        for node, state in self._nodes.items():
            state.dcache.observer = (
                instruments.dcache_observer(node)
                if instruments is not None
                else None
            )

    def _new_cache(self, node: int) -> Cache:
        # Cache construction flows through node_state(); reaching this
        # method directly would bypass the d-cache pairing.
        return self.node_state(node).cache

    def cache_at(self, node: int) -> Cache:
        return self.node_state(node).cache

    def invalidate_object(self, object_id: int) -> int:
        """Drop copies but keep statistics: descriptors fall to d-caches."""
        removed = 0
        for state in self._nodes.values():
            entry = state.cache.remove(object_id)
            if entry is not None:
                state.dcache.insert(entry.descriptor)
                removed += 1
        return removed

    def invalidate_step(self, node: int, object_id: int) -> int:
        """Per-node invalidation: the dropped copy's descriptor survives."""
        state = self._nodes.get(node)
        if state is None:
            return 0
        entry = state.cache.remove(object_id)
        if entry is None:
            return 0
        state.dcache.insert(entry.descriptor)
        return 1

    def check_invariants(self) -> None:
        for state in self._nodes.values():
            state.check_invariants()
