"""The MODULO baseline [Bhattacharjee et al., INFOCOM'98].

Paper section 3.3: a modified LRU scheme with a simple placement rule --
on the delivery path from the origin server to the client, the object is
cached only at nodes a fixed number of hops (the *cache radius*) apart.
Positions are anchored at the origin server: a node whose hop distance
from the server attachment is a positive multiple of the radius stores a
copy.  A radius of 1 degenerates to the LRU (cache everywhere) scheme.

Under the hierarchical architecture this anchoring makes any radius > 1
leave entire cache levels unused (paper section 4.2): with a depth-4 tree
and radius 4 only the leaf caches (4 hops from the server) are eligible.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.costs.model import CostModel
from repro.schemes.lru_everywhere import LRUEverywhereScheme


class ModuloScheme(LRUEverywhereScheme):
    """LRU replacement with radius-based placement."""

    name = "modulo"

    def __init__(
        self,
        cost_model: CostModel,
        capacity_bytes: int,
        radius: int = 4,
        capacity_overrides: dict | None = None,
    ) -> None:
        super().__init__(cost_model, capacity_bytes, capacity_overrides)
        if radius < 1:
            raise ValueError("cache radius must be >= 1")
        self.radius = radius
        self.name = f"modulo(r={radius})"

    def _placement_indices(
        self, path: Sequence[int], hit_index: int
    ) -> List[int]:
        last = len(path) - 1  # server attachment position
        return [
            i
            for i in range(hit_index)
            if (last - i) % self.radius == 0
        ]
