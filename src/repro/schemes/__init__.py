"""Caching schemes: the paper's baselines plus the shared scheme interface.

The coordinated scheme itself lives in :mod:`repro.core.coordinated`; the
baselines of paper section 3.3 live here:

* :class:`LRUEverywhereScheme` -- cache at every node on the delivery
  path, evict least-recently-used.
* :class:`ModuloScheme` -- LRU replacement, but place copies only at nodes
  a fixed *cache radius* of hops apart [Bhattacharjee et al. 1998].
* :class:`LNCRScheme` -- cache everywhere, evict by least normalized cost
  loss [Scheuermann et al. 1997].
"""

from repro.schemes.base import CachingScheme, RequestOutcome
from repro.schemes.descriptor_scheme import DescriptorSchemeBase
from repro.schemes.extra_baselines import (
    AdmissionLRUScheme,
    GDSScheme,
    LFUEverywhereScheme,
)
from repro.schemes.lru_everywhere import LRUEverywhereScheme
from repro.schemes.modulo import ModuloScheme
from repro.schemes.lncr import LNCRScheme

__all__ = [
    "AdmissionLRUScheme",
    "CachingScheme",
    "DescriptorSchemeBase",
    "GDSScheme",
    "LFUEverywhereScheme",
    "LNCRScheme",
    "LRUEverywhereScheme",
    "ModuloScheme",
    "RequestOutcome",
]
