"""Additional baselines from the paper's related-work space (section 5).

These are not part of the paper's evaluation but round out the baseline
family for downstream users and for the extended-comparison bench:

* :class:`LFUEverywhereScheme` -- cache everywhere, evict least
  frequently used (the other classic page-replacement extension [19]).
* :class:`GDSScheme` -- cache everywhere, GreedyDual-Size(-Popularity)
  replacement [8]; cost = immediate upstream link, like LNC-R.
* :class:`AdmissionLRUScheme` -- LRU with an admission filter in the
  spirit of Aggarwal et al. [2]: an object enters a cache only on its
  second request within a bounded history window, keeping one-hit
  wonders out.  (Placement and replacement are still per-cache only; it
  exists to show admission control alone does not close the gap to
  coordinated management.)
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Sequence

from repro.cache.base import Cache, CacheTooSmallError
from repro.cache.descriptors import ObjectDescriptor
from repro.cache.gds import GDSCache
from repro.cache.lfu import LFUCache
from repro.cache.lru import LRUCache
from repro.costs.model import CostModel
from repro.schemes.base import CachingScheme, RequestOutcome
from repro.schemes.lru_everywhere import LRUEverywhereScheme


class LFUEverywhereScheme(LRUEverywhereScheme):
    """Place at every on-path cache; LFU replacement."""

    name = "lfu"

    def _new_cache(self, node: int) -> Cache:
        return LFUCache(self.capacity_for(node))


class GDSScheme(CachingScheme):
    """Place everywhere; GreedyDual-Size(-Popularity) replacement."""

    def __init__(
        self,
        cost_model: CostModel,
        capacity_bytes: int,
        popularity_aware: bool = True,
        capacity_overrides: dict | None = None,
    ) -> None:
        super().__init__(cost_model, capacity_bytes, capacity_overrides)
        self.popularity_aware = popularity_aware
        self.name = "gdsp" if popularity_aware else "gds"

    def _new_cache(self, node: int) -> Cache:
        return GDSCache(self.capacity_for(node), self.popularity_aware)

    def _insert_at(
        self, index: int, path: Sequence[int], object_id: int, size: int, now: float
    ):
        """GDS insertion: cost = immediate upstream link, reference recorded."""
        cache = self.cache_at(path[index])
        upstream_cost = self.cost_model.link_cost(
            path[index], path[index + 1], size
        )
        descriptor = ObjectDescriptor(object_id, size, miss_penalty=upstream_cost)
        descriptor.record_access(now)
        try:
            return cache.insert(descriptor, now)
        except CacheTooSmallError:
            return None

    def process_request(
        self, path: Sequence[int], object_id: int, size: int, now: float
    ) -> RequestOutcome:
        hit_index = self._find_hit(path, object_id, now)
        inserted: List[int] = []
        evictions = 0
        for i in range(hit_index):
            evicted = self._insert_at(i, path, object_id, size, now)
            if evicted is None:
                continue
            inserted.append(path[i])
            evictions += len(evicted)
        if self._instruments is not None and hit_index > 0:
            chosen = [path[i] for i in range(hit_index)]
            self._emit_placement(
                now, object_id, path, hit_index, chosen, chosen, inserted
            )
        return RequestOutcome(
            path=path,
            hit_index=hit_index,
            size=size,
            inserted_nodes=tuple(inserted),
            evicted_objects=evictions,
        )


class AdmissionLRUScheme(CachingScheme):
    """LRU replacement with a second-hit admission filter per node."""

    name = "admission-lru"

    def __init__(
        self,
        cost_model: CostModel,
        capacity_bytes: int,
        history_entries: int = 1024,
        capacity_overrides: dict | None = None,
    ) -> None:
        super().__init__(cost_model, capacity_bytes, capacity_overrides)
        if history_entries < 1:
            raise ValueError("history_entries must be >= 1")
        self.history_entries = history_entries
        self._history: Dict[int, "OrderedDict[int, None]"] = {}

    def _new_cache(self, node: int) -> Cache:
        return LRUCache(self.capacity_for(node))

    def _seen_before(self, node: int, object_id: int) -> bool:
        """Record the sighting; report whether it was already in history."""
        history = self._history.setdefault(node, OrderedDict())
        if object_id in history:
            history.move_to_end(object_id)
            return True
        history[object_id] = None
        if len(history) > self.history_entries:
            history.popitem(last=False)
        return False

    # The admission hook doubles as the live deliver-step filter: history
    # is node-local, so checking it at delivery time (response unwinding
    # through the node) is state-equivalent to the simulator's ascending
    # placement loop.
    _admit = _seen_before

    def process_request(
        self, path: Sequence[int], object_id: int, size: int, now: float
    ) -> RequestOutcome:
        hit_index = self._find_hit(path, object_id, now)
        inserted: List[int] = []
        admitted: List[int] = []
        evictions = 0
        for i in range(hit_index):
            node = path[i]
            if not self._admit(node, object_id):
                continue  # admission denied on first sighting
            admitted.append(node)
            evicted = self._insert_at(i, path, object_id, size, now)
            if evicted is None:
                continue
            inserted.append(node)
            evictions += len(evicted)
        if self._instruments is not None and hit_index > 0:
            self._emit_placement(
                now,
                object_id,
                path,
                hit_index,
                [path[i] for i in range(hit_index)],
                admitted,
                inserted,
            )
        return RequestOutcome(
            path=path,
            hit_index=hit_index,
            size=size,
            inserted_nodes=tuple(inserted),
            evicted_objects=evictions,
        )
