"""Per-node state shared by descriptor-driven schemes (LNC-R, Coordinated).

Bundles a node's main :class:`~repro.cache.ncl.NCLCache` with its
:class:`~repro.cache.dcache.DescriptorCache` and implements descriptor
migration: descriptors follow objects into the main cache and fall back
to the d-cache on eviction, so frequency history survives cache churn
(paper sections 2.3-2.4).
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.base import CacheEntry, CacheTooSmallError
from repro.cache.dcache import DescriptorCache
from repro.cache.ncl import NCLCache
from repro.cache.ncl_heap import HeapNCLCache
from repro.cache.descriptors import ObjectDescriptor

_NCL_STRUCTURES = ("list", "heap", "mirrored")


class DescriptorNode:
    """One node's main cache + d-cache pair.

    ``ncl_structure`` selects the NCL bookkeeping implementation: the
    default bisect ``list``, the paper's suggested lazy-deletion ``heap``
    (section 2.4) -- the two are policy-equivalent -- or ``mirrored``,
    the audit layer's differential pairing that behaves exactly like
    ``list`` while a shadow heap cross-checks every eviction decision
    (see :mod:`repro.verify.oracles`).
    """

    __slots__ = ("cache", "dcache")

    def __init__(
        self,
        capacity_bytes: int,
        dcache_entries: int,
        dcache_policy: str = "lfu",
        ncl_structure: str = "list",
    ) -> None:
        if ncl_structure not in _NCL_STRUCTURES:
            raise ValueError(f"ncl_structure must be one of {_NCL_STRUCTURES}")
        if ncl_structure == "mirrored":
            from repro.verify.oracles import MirroredNCLCache

            cache_type = MirroredNCLCache
        else:
            cache_type = NCLCache if ncl_structure == "list" else HeapNCLCache
        self.cache = cache_type(capacity_bytes)
        self.dcache = DescriptorCache(dcache_entries, policy=dcache_policy)

    def descriptor(self, object_id: int) -> Optional[ObjectDescriptor]:
        """The node's descriptor for an object, wherever it lives."""
        entry = self.cache.entry(object_id)
        if entry is not None:
            return entry.descriptor
        return self.dcache.peek(object_id)

    def record_request(self, object_id: int, now: float) -> Optional[ObjectDescriptor]:
        """Record one reference on the node's descriptor, if any.

        Returns the descriptor (with refreshed frequency) or ``None`` when
        the node has no descriptor for the object -- the situation flagged
        upstream with the paper's "no descriptor" tag.
        """
        if object_id in self.cache:
            self.cache.record_access(object_id, now)
            return self.cache.entry(object_id).descriptor
        descriptor = self.dcache.get(object_id)  # LFU reference
        if descriptor is not None:
            descriptor.record_access(now)
        return descriptor

    def update_miss_penalty(self, object_id: int, penalty: float, now: float) -> None:
        """Refresh the stored miss penalty (response-path update)."""
        if object_id in self.cache:
            self.cache.set_miss_penalty(object_id, penalty, now)
            return
        descriptor = self.dcache.peek(object_id)
        if descriptor is not None:
            descriptor.miss_penalty = penalty

    def ensure_dcache_descriptor(
        self, object_id: int, size: int, penalty: float, now: float
    ) -> ObjectDescriptor:
        """Create (or refresh) the d-cache descriptor for a passing object.

        Used on the response path when the object is not cached at this
        node (paper section 2.4).  A freshly created descriptor records the
        current reference.
        """
        descriptor = self.dcache.peek(object_id)
        if descriptor is None:
            descriptor = ObjectDescriptor(object_id, size, miss_penalty=penalty)
            descriptor.record_access(now)
            self.dcache.insert(descriptor)
        else:
            descriptor.miss_penalty = penalty
        return descriptor

    def insert_object(
        self, object_id: int, size: int, penalty: float, now: float
    ) -> Optional[List[CacheEntry]]:
        """Insert a copy into the main cache; victims' descriptors go to the d-cache.

        The object's descriptor is pulled from the d-cache when present
        (preserving its frequency history) or freshly created.  Returns the
        evicted entries, or ``None`` when the object exceeds the cache
        capacity and nothing was done.
        """
        descriptor = self.dcache.remove(object_id)
        if descriptor is None:
            descriptor = ObjectDescriptor(object_id, size, miss_penalty=penalty)
            descriptor.record_access(now)
        else:
            descriptor.miss_penalty = penalty
        try:
            evicted = self.cache.insert(descriptor, now)
        except CacheTooSmallError:
            # Put the descriptor back where it came from; the object itself
            # simply is not cacheable at this node.
            self.dcache.insert(descriptor)
            return None
        for entry in evicted:
            self.dcache.insert(entry.descriptor)
        return evicted

    def check_invariants(self) -> None:
        self.cache.check_invariants()
        self.dcache.check_invariants()
        overlap = [oid for oid in self.cache.object_ids() if oid in self.dcache]
        if overlap:
            raise AssertionError(
                f"objects present in both caches: {overlap[:5]}"
            )
