"""Command-line interface: ``cascade-repro`` / ``python -m repro``.

Subcommands:

* ``table1``  -- regenerate Table 1 (en-route topology characteristics).
* ``sweep``   -- run a cache-size sweep (the engine behind Figures 6-10)
  and print the metric table (optionally ASCII charts / JSON output).
* ``radius``  -- the MODULO cache-radius ablation.
* ``analyze`` -- workload statistics and Zipf fit of a trace CSV.
* ``replay``  -- replay a trace CSV against one scheme on one
  architecture and print its metrics.
* ``sim``     -- run each scheme once at one cache size; with
  ``--audit`` the run executes under the full correctness audit layer
  (invariant sweeps, differential oracles, shadow replay), and the
  instrumentation flags (``--trace-out``, ``--node-stats``,
  ``--prom-out``, ``--timers``, ``--timeseries-window``) attach the
  observability layer of :mod:`repro.obs`.
* ``trace``   -- filter / summarize a JSONL event trace saved by
  ``sim --trace-out``.
* ``audit-selftest`` -- prove the audit layer detects seeded mutations.
* ``serve``   -- run a topology as a live cluster of asyncio cache
  nodes speaking the coordinated protocol over TCP, one ``/metrics``
  endpoint per node, drain-and-snapshot on SIGINT/SIGTERM (see
  :mod:`repro.serve` and ``docs/serving.md``).
* ``loadgen`` -- drive a served cluster from a generated trace in
  sequential / closed-loop / open-loop mode and report modelled metrics
  plus wall-clock latency percentiles.

Examples::

    cascade-repro table1 --seed 0
    cascade-repro sweep --arch en-route --schemes lru,coordinated \
        --sizes 0.01,0.1 --scale small
    cascade-repro radius --arch hierarchical --radii 1,2,4 --size 0.03
    cascade-repro sim --audit --scale small
    cascade-repro sim --schemes coordinated --trace-out run.jsonl \
        --node-stats --timers
    cascade-repro trace run.jsonl --kinds placement,eviction
    cascade-repro serve --scheme coordinated --manifest cluster.json &
    cascade-repro loadgen --manifest cluster.json --mode closed \
        --concurrency 8
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Sequence

from repro.experiments.charts import render_figure
from repro.experiments.presets import (
    DEFAULT_CACHE_SIZES,
    SMALL_SCALE,
    STANDARD_SCALE,
    build_architecture,
)
from repro.experiments.results_io import save_points_json, save_run_records
from repro.experiments.sweeps import (
    PROVISION_PROFILES,
    run_cache_size_sweep,
    run_modulo_radius_sweep,
    run_provisioning_sweep,
)
from repro.experiments.tables import (
    format_sweep_table,
    format_table1,
    topology_characteristics,
)
from repro.sim.factory import SCHEME_NAMES
from repro.verify.violations import AuditViolation

_SCALES = {"small": SMALL_SCALE, "standard": STANDARD_SCALE}
_DEFAULT_METRICS = (
    "latency",
    "response_ratio",
    "byte_hit_ratio",
    "traffic",
    "hops",
    "cache_load",
)


def _csv_floats(text: str) -> List[float]:
    return [float(x) for x in text.split(",") if x]


def _csv_ints(text: str) -> List[int]:
    return [int(x) for x in text.split(",") if x]


def _csv_strs(text: str) -> List[str]:
    return [x.strip() for x in text.split(",") if x.strip()]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--arch",
        choices=("en-route", "hierarchical"),
        default="en-route",
        help="cascaded caching architecture",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="small",
        help="workload preset scale",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--theta", type=float, default=None, help="override Zipf parameter"
    )


def _add_grid_args(parser: argparse.ArgumentParser) -> None:
    """Execution-layer flags shared by the runner-backed grid commands."""
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size for the grid",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        help="JSONL checkpoint file streaming finished points",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip points already present in --checkpoint",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print one line per finished grid point",
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help="run every point under the correctness audit layer "
        "(violations are reported and fail the command)",
    )
    parser.add_argument(
        "--node-stats",
        action="store_true",
        help="attach the per-node stat registry to every executed point "
        "(snapshots land in the run records / checkpoint sidecar)",
    )


def _preset(args: argparse.Namespace):
    preset = _SCALES[args.scale].with_seed(args.seed)
    if args.theta is not None:
        preset = preset.with_theta(args.theta)
    return preset


def _add_coherency_args(parser: argparse.ArgumentParser) -> None:
    """The coherency flag group shared by sim / serve / loadgen."""
    group = parser.add_argument_group(
        "coherency",
        "invalidation transport (see repro.coherency and "
        "docs/coherency.md); without --coherency, updates use the "
        "paper's implicit in-band design",
    )
    group.add_argument(
        "--coherency",
        choices=("inband", "channel"),
        default=None,
        help="invalidation transport: piggybacked in-band inv frames or "
        "the out-of-band pub/sub channel",
    )
    group.add_argument(
        "--channel-poll-interval",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="channel mode, simulator only: trace time between subscriber "
        "polls (0 = zero-latency delivery, the oracle configuration)",
    )
    group.add_argument(
        "--group-count",
        type=int,
        default=0,
        help="bucket the catalog into this many invalidation groups, so "
        "one update event invalidates many objects (0 = one group per "
        "object)",
    )
    group.add_argument(
        "--group-skew",
        type=float,
        default=0.8,
        help="Zipf skew of the group-size distribution (with --group-count)",
    )


def _build_coherency(args: argparse.Namespace):
    """Optional CoherencyConfig from the coherency flag group.

    Raises ValueError on inconsistent flags (including the combinations
    CoherencyConfig itself rejects) so callers print the message and
    exit 2.
    """
    from repro.coherency import CoherencyConfig

    if args.coherency is None:
        if args.channel_poll_interval or args.group_count:
            raise ValueError(
                "--channel-poll-interval / --group-count require --coherency"
            )
        return None
    return CoherencyConfig(
        mode=args.coherency,
        poll_interval=args.channel_poll_interval,
        group_count=args.group_count or None,
        group_skew=args.group_skew,
    )


def _build_updates(coherency, groups, num_objects, duration, rate, seed):
    """The update-event stream behind ``--update-rate``.

    With grouped coherency the stream targets whole groups -- both
    modes then invalidate the same object sets (in-band expands each
    group event to per-object inv broadcasts), which is what makes the
    in-band vs. channel comparison apples-to-apples.  Without groups it
    targets single objects.
    """
    if rate <= 0:
        return []
    from repro.workload.updates import (
        generate_group_update_events,
        generate_update_events,
    )

    if coherency is not None and coherency.grouped:
        if groups is None:
            groups = coherency.build_groups(num_objects)
        return generate_group_update_events(groups, duration, rate, seed=seed)
    return generate_update_events(num_objects, duration, rate, seed=seed)


def _format_coherency(stats: dict, indent: str = "    ") -> str:
    """One-paragraph human summary of a coherency accounting dict."""
    p50 = stats.get("staleness_p50")
    p99 = stats.get("staleness_p99")
    staleness = (
        "staleness p50/p99 " f"{p50:.4f} / {p99:.4f}"
        if p50 is not None and p99 is not None
        else "no staleness windows"
    )
    lines = [
        f"{indent}coherency[{stats['mode']}]: "
        f"{stats['events_published']} events, "
        f"protocol {stats['protocol_bytes']} B "
        f"(inv {stats['inv_bytes']} B, channel {stats['channel_bytes']} B)",
        f"{indent}  stale hits {stats['stale_hits']} "
        f"({stats['stale_bytes']} B), "
        f"copies invalidated {stats['copies_invalidated']}, {staleness}",
    ]
    extras = []
    for key in ("catchups", "gaps", "duplicates", "event_drops"):
        if stats.get(key):
            extras.append(f"{key} {stats[key]}")
    pending = stats.get("pending")
    if pending:
        extras.append(f"pending {pending}")
    if extras:
        lines.append(f"{indent}  channel health: {', '.join(extras)}")
    return "\n".join(lines)


def _cmd_table1(args: argparse.Namespace) -> int:
    preset = _preset(args)
    arch = build_architecture("en-route", preset.workload, seed=args.seed)
    print("Table 1: System Parameters for En-Route Architecture")
    print(format_table1(topology_characteristics(arch)))
    return 0


def _grid_observer(args: argparse.Namespace):
    """Progress printer + record collector for runner-backed commands.

    Returns ``(progress_callback, records)``: the callback prints one
    line per finished point when ``--progress`` is set, and always
    accumulates the per-point run records so they can be persisted next
    to the sweep results.
    """
    records: list = []

    def on_progress(event) -> None:
        records.append(event.record)
        if args.progress:
            print(f"  {event.format()}", flush=True)

    return on_progress, records


def _report_grid(records, save: str | None, audited: bool = False) -> int:
    """Print the grid's observability summary; persist records if saving.

    Returns the number of audit violations across the grid (always 0
    for unaudited runs), so commands can fail loudly on a dirty audit.
    """
    executed = [r for r in records if not r.reused]
    reused = len(records) - len(executed)
    busy = sum(r.duration_seconds for r in executed)
    line = f"\n{len(executed)} points executed ({busy:.1f}s simulated)"
    if reused:
        line += f", {reused} reused from checkpoint"
    print(line)
    violations = 0
    if audited:
        checks = sum(r.audit_checks for r in records)
        violations = sum(len(r.audit_violations) for r in records)
        if violations:
            print(f"AUDIT: {checks} checks, {violations} VIOLATIONS:")
            for record in records:
                for raw in record.audit_violations:
                    violation = AuditViolation.from_dict(raw)
                    print(f"  {record.scheme}: {violation.format()}")
        else:
            print(f"audit: {checks} checks across the grid, no violations")
    if save:
        records_path = str(save) + ".records.json"
        save_run_records(records, records_path)
        print(f"run records written to {records_path}")
    return violations


def _check_resume(args: argparse.Namespace) -> bool:
    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint", file=sys.stderr)
        return False
    return True


def _cmd_sweep(args: argparse.Namespace) -> int:
    preset = _preset(args)
    unknown = set(args.schemes) - set(SCHEME_NAMES)
    if unknown:
        print(
            f"unknown schemes: {sorted(unknown)}; "
            f"expected names from {sorted(SCHEME_NAMES)}",
            file=sys.stderr,
        )
        return 2
    if not _check_resume(args):
        return 2
    if args.profiles and not args.provision:
        print("--profiles requires --provision", file=sys.stderr)
        return 2
    profiles = None
    if args.provision:
        names = args.profiles or sorted(PROVISION_PROFILES)
        unknown_profiles = set(names) - set(PROVISION_PROFILES)
        if unknown_profiles:
            print(
                f"unknown provisioning profiles: {sorted(unknown_profiles)}; "
                f"expected names from {sorted(PROVISION_PROFILES)}",
                file=sys.stderr,
            )
            return 2
        profiles = {name: PROVISION_PROFILES[name] for name in names}
    generator = preset.generator()
    trace = generator.generate()
    arch = build_architecture(args.arch, preset.workload, seed=args.seed)
    on_progress, records = _grid_observer(args)
    sweep_kwargs = dict(
        scheme_names=args.schemes,
        cache_sizes=args.sizes,
        scheme_params={"modulo": {"radius": args.radius}},
        workers=args.workers,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
        progress=on_progress,
        audit=args.audit,
        node_stats=args.node_stats,
    )
    if profiles is not None:
        points = run_provisioning_sweep(
            arch, trace, generator.catalog, profiles=profiles, **sweep_kwargs
        )
        title = (
            f"{args.arch} provisioning sweep "
            f"({preset.name} scale, seed {args.seed}, "
            f"profiles {', '.join(sorted(profiles))})"
        )
    else:
        points = run_cache_size_sweep(
            arch, trace, generator.catalog, **sweep_kwargs
        )
        title = f"{args.arch} sweep ({preset.name} scale, seed {args.seed})"
    print(format_sweep_table(points, args.metrics, title=title))
    if args.chart:
        for metric in args.metrics:
            print()
            print(render_figure(points, metric, title=f"{metric}:"))
    if args.save:
        save_points_json(points, args.save)
        print(f"\nsaved {len(points)} points to {args.save}")
    violations = _report_grid(records, args.save, audited=args.audit)
    return 1 if violations else 0


def _cmd_radius(args: argparse.Namespace) -> int:
    if not _check_resume(args):
        return 2
    preset = _preset(args)
    generator = preset.generator()
    trace = generator.generate()
    arch = build_architecture(args.arch, preset.workload, seed=args.seed)
    on_progress, records = _grid_observer(args)
    points = run_modulo_radius_sweep(
        arch,
        trace,
        generator.catalog,
        radii=args.radii,
        relative_cache_size=args.size,
        dcache_ratio=args.dcache_ratio,
        workers=args.workers,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
        progress=on_progress,
        audit=args.audit,
        node_stats=args.node_stats,
    )
    print(
        format_sweep_table(
            points,
            args.metrics,
            title=f"MODULO radius ablation on {args.arch} (cache {args.size:.1%})",
        )
    )
    violations = _report_grid(records, None, audited=args.audit)
    return 1 if violations else 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.workload.stats import fit_zipf, summarize_trace
    from repro.workload.trace import read_trace_csv

    trace = read_trace_csv(args.trace)
    stats = summarize_trace(trace)
    print(f"trace: {args.trace}")
    print(f"  requests          {stats.requests}")
    print(f"  unique objects    {stats.unique_objects}")
    print(f"  unique clients    {stats.unique_clients}")
    print(f"  duration          {stats.duration:.1f} s")
    print(f"  mean request rate {stats.mean_request_rate:.2f} /s")
    print(f"  mean object size  {stats.mean_size:.0f} B")
    print(f"  median size       {stats.median_size:.0f} B")
    print(f"  total bytes       {stats.total_bytes}")
    try:
        fit = fit_zipf(trace)
    except ValueError as error:
        print(f"  zipf fit          unavailable ({error})")
        return 0
    print(f"  zipf theta        {fit.theta:.3f} (r^2 = {fit.r_squared:.3f})")
    print(f"  top-decile share  {fit.top_decile_share:.1%}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.experiments.compare import compare_points
    from repro.experiments.results_io import load_points_json

    baseline = load_points_json(args.baseline)
    candidate = load_points_json(args.candidate)
    report = compare_points(
        baseline,
        candidate,
        metrics=args.metrics,
        relative_tolerance=args.tolerance,
    )
    print(report.format())
    return 0 if report.ok else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.costs.model import LatencyCostModel
    from repro.sim.config import SimulationConfig
    from repro.sim.engine import SimulationEngine
    from repro.workload.trace import read_trace_csv

    if args.scheme not in SCHEME_NAMES:
        print(
            f"unknown scheme {args.scheme!r}; "
            f"expected one of {sorted(SCHEME_NAMES)}",
            file=sys.stderr,
        )
        return 2
    trace = read_trace_csv(args.trace)
    if len(trace) == 0:
        print("trace is empty", file=sys.stderr)
        return 2
    num_clients = max(r.client_id for r in trace) + 1
    num_servers = max(r.server_id for r in trace) + 1
    # The trace itself defines the object volume base.
    sizes_by_object = {r.object_id: r.size for r in trace}
    total_bytes = sum(sizes_by_object.values())
    mean_size = total_bytes / len(sizes_by_object)

    from repro.workload.generator import WorkloadConfig

    workload = WorkloadConfig(
        num_objects=max(sizes_by_object) + 1,
        num_servers=num_servers,
        num_clients=num_clients,
        num_requests=len(trace),
    )
    arch = build_architecture(args.arch, workload, seed=args.seed)
    cost = LatencyCostModel(arch.network, mean_size)
    config = SimulationConfig(relative_cache_size=args.size)
    capacity = config.capacity_bytes(total_bytes)
    dentries = config.dcache_entries(total_bytes, mean_size)

    from repro.sim.factory import build_scheme

    scheme = build_scheme(args.scheme, cost, capacity, dentries)
    result = SimulationEngine(arch, cost, scheme).run(trace)
    s = result.summary
    print(f"{args.scheme} on {args.arch}, cache {args.size:.2%} "
          f"({result.requests_measured} measured requests)")
    print(f"  mean latency      {s.mean_latency:.5f}")
    print(f"  latency p50/p90/p99  "
          f"{s.latency_percentiles[0]:.5f} / {s.latency_percentiles[1]:.5f} "
          f"/ {s.latency_percentiles[2]:.5f}")
    print(f"  response ratio    {s.mean_response_ratio:.3e}")
    print(f"  byte hit ratio    {s.byte_hit_ratio:.4f}")
    print(f"  mean hops         {s.mean_hops:.3f}")
    print(f"  cache load/req    {s.mean_cache_load:.0f} B")
    return 0


def _scheme_path(base: str, scheme: str, multi: bool) -> str:
    """Per-scheme output path: insert ``.{scheme}`` before the suffix.

    Only applied when several schemes share one ``--*-out`` flag, so a
    single-scheme run writes exactly the path the user asked for.
    """
    if not multi:
        return base
    from pathlib import Path

    path = Path(base)
    if path.suffix:
        return str(path.with_name(f"{path.stem}.{scheme}{path.suffix}"))
    return f"{base}.{scheme}"


def _build_sim_instruments(args: argparse.Namespace, scheme: str, multi: bool):
    """The per-scheme ``Instruments`` bundle for ``repro sim`` (or None).

    Returns ``(instruments, trace_writer)``; the writer must be closed
    by the caller after the run.
    """
    from repro.obs import Instruments, JsonlTraceWriter, PhaseTimers, Probe
    from repro.obs.registry import StatRegistry

    writer = None
    probe = None
    if args.trace_out:
        writer = JsonlTraceWriter(_scheme_path(args.trace_out, scheme, multi))
        probe = Probe(
            writer,
            sample_every=args.trace_sample_every,
            sample_rate=args.trace_sample_rate,
            seed=args.probe_seed,
        )
    registry = (
        StatRegistry()
        if args.node_stats or args.prom_out or args.snapshot_every
        else None
    )
    timers = PhaseTimers() if args.timers else None
    if probe is None and registry is None and timers is None:
        return None, None
    return (
        Instruments(
            probe=probe,
            registry=registry,
            timers=timers,
            snapshot_every=args.snapshot_every,
        ),
        writer,
    )


def _cmd_sim(args: argparse.Namespace) -> int:
    from repro.experiments.runner import GridTask, execute_point
    from repro.metrics.timeseries import (
        IntervalMetricsCollector,
        series_to_csv,
        series_to_json,
    )
    from repro.obs.export import format_node_stats, prometheus_text
    from repro.sim.config import SimulationConfig
    from repro.verify.auditor import AuditConfig

    preset = _preset(args)
    unknown = set(args.schemes) - set(SCHEME_NAMES)
    if unknown:
        print(
            f"unknown schemes: {sorted(unknown)}; "
            f"expected names from {sorted(SCHEME_NAMES)}",
            file=sys.stderr,
        )
        return 2
    if args.timeseries_out and not args.timeseries_window:
        print("--timeseries-out requires --timeseries-window", file=sys.stderr)
        return 2
    try:
        coherency = _build_coherency(args)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    if coherency is not None and not args.update_rate:
        print("--coherency requires --update-rate > 0 "
              "(a coherency mode with no updates measures nothing)",
              file=sys.stderr)
        return 2
    generator = preset.generator()
    trace = (
        generator.generate_columnar() if args.columnar else generator.generate()
    )
    updates = _build_updates(
        coherency,
        None,
        generator.catalog.num_objects,
        trace.duration,
        args.update_rate,
        args.seed,
    )
    arch = build_architecture(args.arch, preset.workload, seed=args.seed)
    audit: bool | AuditConfig = False
    if args.audit:
        # Collecting mode so one bad scheme does not hide the others'
        # violations; shadow replay on -- sim is the thorough front.
        audit = AuditConfig(
            audit_every=args.audit_every,
            shadow_replay=True,
            strict=False,
        )
    config = SimulationConfig(
        relative_cache_size=args.size, dcache_ratio=args.dcache_ratio
    )
    header = f"{args.arch} ({preset.name} scale, seed {args.seed}), " \
             f"cache {args.size:.2%}"
    if args.audit:
        header += f", audited every {args.audit_every} requests"
    if updates:
        header += f", {len(updates)} update events"
        if coherency is not None:
            header += f" via {coherency.mode}"
    print(header)
    multi = len(args.schemes) > 1
    total_violations = 0
    points = []
    for name in args.schemes:
        task = GridTask(scheme=name, config=config, params={})
        instruments, writer = _build_sim_instruments(args, name, multi)
        interval = (
            IntervalMetricsCollector(args.timeseries_window)
            if args.timeseries_window
            else None
        )
        try:
            point, record = execute_point(
                arch,
                trace,
                generator.catalog,
                task,
                audit=audit,
                instruments=instruments,
                interval_collector=interval,
                updates=updates,
                coherency=coherency,
            )
        finally:
            if writer is not None:
                writer.close()
        points.append(point)
        s = point.summary
        line = (
            f"  {name:14s} latency {s.mean_latency:8.5f}  "
            f"byte-hit {s.byte_hit_ratio:.4f}  hops {s.mean_hops:.3f}"
        )
        if args.audit:
            if record.audit_violations:
                line += (
                    f"  [{record.audit_checks} checks, "
                    f"{len(record.audit_violations)} VIOLATIONS]"
                )
            else:
                line += f"  [{record.audit_checks} checks, audit ok]"
        print(line, flush=True)
        if point.coherency is not None:
            print(_format_coherency(point.coherency))
        for raw in record.audit_violations:
            print(f"    {AuditViolation.from_dict(raw).format()}")
        total_violations += len(record.audit_violations)
        if writer is not None:
            print(f"    trace: {writer.events_written} events -> {writer.path}")
        if args.node_stats and record.node_stats is not None:
            print(format_node_stats(record.node_stats))
        if args.prom_out and record.node_stats is not None:
            prom_path = _scheme_path(args.prom_out, name, multi)
            with open(prom_path, "w") as f:
                f.write(prometheus_text(record.node_stats))
            print(f"    prometheus dump -> {prom_path}")
        if args.timers and instruments is not None:
            print(instruments.timers.format())
        if interval is not None:
            series = interval.series()
            if args.timeseries_out:
                out_path = _scheme_path(args.timeseries_out, name, multi)
                text = (
                    series_to_json(series)
                    if out_path.endswith(".json")
                    else series_to_csv(series)
                )
                with open(out_path, "w") as f:
                    f.write(text)
                print(f"    timeseries: {len(series)} windows -> {out_path}")
            else:
                print(series_to_csv(series), end="")
    if args.save:
        save_points_json(points, args.save)
        print(f"saved {len(points)} points to {args.save}")
    if args.audit:
        verdict = (
            "audit clean: no violations"
            if not total_violations
            else f"audit FAILED: {total_violations} violations"
        )
        print(verdict)
    return 1 if total_violations else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs.export import read_trace_events, summarize_trace_events
    from repro.obs.probe import EVENT_KINDS

    kinds = args.kinds or None
    if kinds:
        unknown = set(kinds) - set(EVENT_KINDS)
        if unknown:
            print(
                f"unknown event kinds: {sorted(unknown)} "
                f"(valid: {', '.join(EVENT_KINDS)})",
                file=sys.stderr,
            )
            return 2
    try:
        events = read_trace_events(args.trace, kinds=kinds)
        if args.events:
            for shown, event in enumerate(events):
                if args.limit and shown >= args.limit:
                    break
                print(json.dumps(event, separators=(",", ":")))
            return 0
        summary = summarize_trace_events(events)
    except OSError as error:
        print(f"cannot read trace: {error}", file=sys.stderr)
        return 2
    print(f"trace: {args.trace}")
    print(summary.format())
    return 0


def _cmd_audit_selftest(args: argparse.Namespace) -> int:
    from repro.verify.selftest import run_selftest

    report = run_selftest()
    print(report.format())
    return 0 if report.ok else 1


def _serve_manifest(
    args: argparse.Namespace,
    addresses,
    metrics,
    shards=None,
    coherency=None,
    channel=None,
) -> dict:
    """Everything a remote load generator needs to target this cluster.

    Topology, attachment and routing are deterministic functions of
    (arch, scale, seed, theta), so shipping those parameters lets the
    client rebuild the exact architecture instead of serializing it.
    ``shards`` maps shard id -> owned node ids; a single-process serve
    is recorded as one shard owning everything.  ``coherency`` is the
    serve-side CoherencyConfig (or None); ``channel`` carries the
    broker address and group parameters a channel-mode client needs.
    """
    if shards is None:
        shards = {0: sorted(addresses)}
    document = {
        "scheme": args.scheme,
        "arch": args.arch,
        "scale": args.scale,
        "seed": args.seed,
        "theta": args.theta,
        "relative_cache_size": args.size,
        "dcache_ratio": args.dcache_ratio,
        "warmup_fraction": args.warmup,
        "num_shards": getattr(args, "shards", 1),
        "max_inflight": getattr(args, "max_inflight", None),
        "shards": {
            str(shard): nodes for shard, nodes in sorted(shards.items())
        },
        "nodes": {str(n): list(a) for n, a in sorted(addresses.items())},
        "metrics": {str(n): list(a) for n, a in sorted(metrics.items())},
        "coherency": coherency.to_dict() if coherency is not None else None,
    }
    if channel is not None:
        document["channel"] = channel
    return document


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json
    from pathlib import Path

    from repro.serve import Cluster, ResilienceConfig, RetryPolicy, TCPTransport
    from repro.sim.config import SimulationConfig

    if args.scheme not in SCHEME_NAMES:
        print(
            f"unknown scheme {args.scheme!r}; "
            f"expected one of {sorted(SCHEME_NAMES)}",
            file=sys.stderr,
        )
        return 2
    try:
        coherency = _build_coherency(args)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    if coherency is not None and coherency.poll_interval:
        print(
            "--channel-poll-interval is a simulator knob; the live "
            "channel pushes events to subscribers (set it to 0)",
            file=sys.stderr,
        )
        return 2
    if coherency is not None and args.shards > 1:
        print(
            "--coherency is not supported with --shards > 1 "
            "(the channel broker lives in the serve process)",
            file=sys.stderr,
        )
        return 2
    preset = _preset(args)
    generator = preset.generator()
    arch = build_architecture(args.arch, preset.workload, seed=args.seed)
    config = SimulationConfig(
        relative_cache_size=args.size,
        dcache_ratio=args.dcache_ratio,
        warmup_fraction=args.warmup,
    )
    fault_plan = None
    if args.fault_plan:
        from repro.faults import FaultPlan

        try:
            fault_plan = FaultPlan.from_json_file(args.fault_plan)
        except (OSError, ValueError, KeyError) as error:
            print(
                f"cannot load fault plan {args.fault_plan}: {error}",
                file=sys.stderr,
            )
            return 2
    resilience = ResilienceConfig(
        retry=RetryPolicy(attempts=args.retry_attempts)
    )
    tracing = None
    if args.trace_out:
        from repro.serve import TracingConfig

        tracing = TracingConfig(
            path=args.trace_out, sample_every=args.trace_sample_every
        )

    if args.shards > 1:
        if fault_plan is not None:
            print(
                "--fault-plan is not supported with --shards > 1 "
                "(inject faults on a single-process serve)",
                file=sys.stderr,
            )
            return 2
        return _serve_sharded(args, arch, generator, config, resilience, preset)

    async def run() -> None:
        transport = TCPTransport(host=args.host, call_timeout=args.rpc_timeout)
        if fault_plan is not None:
            from repro.faults import FaultInjector, FaultyTransport

            transport = FaultyTransport(transport, FaultInjector(fault_plan))
            print(fault_plan.describe(), flush=True)
        cluster = Cluster.build(
            arch,
            generator.catalog,
            args.scheme,
            config=config,
            transport=transport,
            resilience=resilience,
            seed=args.seed,
            max_inflight=args.max_inflight,
            tracing=tracing,
            coherency=coherency,
        )
        addresses = await cluster.start()
        metrics = {}
        if not args.no_metrics:
            metrics = await cluster.enable_metrics(host=args.host)
        channel = None
        if cluster.broker is not None:
            channel = {
                "broker": list(cluster.broker_address),
                "groups": dict(cluster.groups.params),
            }
        manifest = _serve_manifest(
            args, addresses, metrics, coherency=coherency, channel=channel
        )
        Path(args.manifest).write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        )
        banner = (
            f"serving {len(addresses)} nodes: {args.scheme} on {args.arch} "
            f"({preset.name} scale, seed {args.seed})"
        )
        if coherency is not None:
            banner += f", coherency {coherency.mode}"
            if cluster.broker is not None:
                banner += f" (broker on {cluster.broker_address})"
        print(banner, flush=True)
        print(f"manifest -> {args.manifest}", flush=True)
        snapshot_path = Path(args.snapshot) if args.snapshot else None
        await cluster.serve_forever(snapshot_path=snapshot_path)
        if fault_plan is not None:
            injected = transport.injector.summary()
            print(
                "injected faults: "
                + ", ".join(f"{k}={v}" for k, v in injected.items())
            )
        if snapshot_path is not None:
            print(f"drained; state snapshot -> {snapshot_path}")

    asyncio.run(run())
    return 0


def _serve_sharded(args, arch, generator, config, resilience, preset) -> int:
    """Multi-process serve: one worker per shard, coordinated over pipes.

    The parent never hosts a node -- it spawns the shard workers, writes
    the merged manifest, and sleeps on SIGINT/SIGTERM; shutdown drains
    every worker and (with ``--snapshot``) lands the final per-node
    stats on disk.
    """
    import json
    import signal as signal_module
    import threading
    from pathlib import Path

    from repro.serve.shard import ShardedCluster

    cluster = ShardedCluster(
        arch,
        generator.catalog,
        args.scheme,
        num_shards=args.shards,
        config=config,
        resilience=resilience,
        seed=args.seed,
        host=args.host,
        max_inflight=args.max_inflight,
        rpc_timeout=args.rpc_timeout,
        metrics=not args.no_metrics,
        trace_path=args.trace_out,
        trace_sample_every=args.trace_sample_every,
    )
    addresses = cluster.start()
    shards = {
        shard: cluster.plan.nodes_of(shard) for shard in range(args.shards)
    }
    manifest = _serve_manifest(
        args, addresses, cluster.metrics_addresses, shards=shards
    )
    Path(args.manifest).write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    print(
        f"serving {len(addresses)} nodes over {args.shards} shard processes: "
        f"{args.scheme} on {args.arch} ({preset.name} scale, seed {args.seed})",
        flush=True,
    )
    print(f"manifest -> {args.manifest}", flush=True)
    stop = threading.Event()
    for sig in (signal_module.SIGINT, signal_module.SIGTERM):
        signal_module.signal(sig, lambda *_: stop.set())
    stop.wait()
    final = cluster.stop()
    if args.snapshot:
        snap = {
            "scheme": args.scheme,
            "architecture": arch.name,
            "num_shards": args.shards,
            "nodes": {str(n): final[n] for n in sorted(final)},
        }
        Path(args.snapshot).write_text(
            json.dumps(snap, indent=2, sort_keys=True) + "\n"
        )
        print(f"drained; state snapshot -> {args.snapshot}")
    return 0


def _load_manifest(path: str, wait: float) -> dict:
    """Read a serve manifest, waiting for the server to publish it."""
    import json
    import time
    from pathlib import Path

    deadline = time.monotonic() + wait
    manifest_path = Path(path)
    while True:
        if manifest_path.exists():
            text = manifest_path.read_text()
            if text.strip():  # fully written (serve writes atomically enough)
                return json.loads(text)
        if time.monotonic() >= deadline:
            raise FileNotFoundError(
                f"manifest {path} not published within {wait:.0f}s "
                "(is `repro serve` running?)"
            )
        time.sleep(0.1)


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio

    from repro.coherency import CoherencyConfig
    from repro.costs.model import LatencyCostModel
    from repro.serve import ClusterClient, LoadGenerator, TCPTransport
    from repro.workload.groups import GroupAssignment
    from repro.workload.trace import Trace

    try:
        requested = _build_coherency(args)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    try:
        manifest = _load_manifest(args.manifest, args.wait)
    except FileNotFoundError as error:
        print(str(error), file=sys.stderr)
        return 2
    # The serve manifest is authoritative for the coherency mode -- the
    # cluster was built with it.  Flags here only assert expectations;
    # the one liberty allowed is requesting in-band against a server
    # that configured nothing (in-band is the implicit default).
    manifest_raw = manifest.get("coherency")
    coherency = (
        CoherencyConfig.from_dict(manifest_raw) if manifest_raw else None
    )
    if requested is not None:
        if coherency is None:
            if requested.mode != "inband":
                print(
                    "--coherency channel requested, but the serve manifest "
                    "has no coherency section (restart serve with "
                    "--coherency channel)",
                    file=sys.stderr,
                )
                return 2
            coherency = requested
        elif requested.to_dict() != coherency.to_dict():
            print(
                f"--coherency flags disagree with the serve manifest "
                f"(server was started with {manifest_raw})",
                file=sys.stderr,
            )
            return 2
    scale = _SCALES[manifest["scale"]].with_seed(manifest["seed"])
    if manifest.get("theta") is not None:
        scale = scale.with_theta(manifest["theta"])
    generator = scale.generator()
    trace = generator.generate()
    if args.requests and args.requests < len(trace):
        trace = Trace(trace.records[: args.requests])
    arch = build_architecture(
        manifest["arch"], scale.workload, seed=manifest["seed"]
    )
    cost_model = LatencyCostModel(arch.network, generator.catalog.mean_size)
    addresses = {
        int(node): (host, port)
        for node, (host, port) in manifest["nodes"].items()
    }
    groups = None
    broker_address = None
    channel_info = manifest.get("channel")
    if channel_info is not None:
        groups = GroupAssignment.from_params(channel_info["groups"])
        broker_address = tuple(channel_info["broker"])
    elif coherency is not None:
        groups = coherency.build_groups(generator.catalog.num_objects)
    updates = _build_updates(
        coherency,
        groups,
        generator.catalog.num_objects,
        trace.duration,
        args.update_rate,
        manifest["seed"],
    )
    if updates and args.mode == "closed":
        print(
            "--update-rate requires --mode sequential or open "
            "(closed mode has no notion of trace time to pace updates)",
            file=sys.stderr,
        )
        return 2
    client = ClusterClient(
        arch,
        cost_model,
        addresses,
        TCPTransport(),
        coherency=coherency,
        groups=groups,
        broker_address=broker_address,
    )
    loadgen = LoadGenerator(
        client,
        trace,
        updates=updates,
        warmup_fraction=manifest["warmup_fraction"],
    )

    async def run():
        try:
            return await loadgen.run(
                mode=args.mode,
                concurrency=args.concurrency,
                speedup=args.speedup,
                max_errors=args.max_errors,
                open_inflight_limit=args.inflight_limit or None,
                busy_retries=args.busy_retries,
            )
        finally:
            await client.close()

    report = asyncio.run(run())
    s = report.summary
    print(
        f"{manifest['scheme']} on {manifest['arch']}: {report.mode} mode, "
        f"{report.requests_total} requests "
        f"({report.requests_measured} measured)"
    )
    if report.requests_per_second is None:
        print("  throughput        n/a (degenerate measurement window)")
    else:
        print(f"  throughput        {report.requests_per_second:8.0f} req/s")
    if report.wall_latency_mean is None:
        print("  wall latency      n/a (no completed requests)")
    else:
        print(
            f"  wall latency      mean {report.wall_latency_mean * 1e3:.3f} ms, "
            f"p50/p90/p99 {report.wall_latency_percentiles[0] * 1e3:.3f} / "
            f"{report.wall_latency_percentiles[1] * 1e3:.3f} / "
            f"{report.wall_latency_percentiles[2] * 1e3:.3f} ms"
        )
    print(f"  modelled latency  {s.mean_latency:.5f}")
    print(f"  byte hit ratio    {s.byte_hit_ratio:.4f}")
    print(f"  hit ratio         {s.hit_ratio:.4f}")
    print(f"  mean hops         {s.mean_hops:.3f}")
    if report.errors:
        print(f"  errors            {report.errors}")
    if report.rejected or report.shed or report.busy_retries:
        print(
            f"  backpressure      rejected {report.rejected}, "
            f"shed {report.shed}, busy retries {report.busy_retries}"
        )
    if report.updates_applied:
        print(
            f"  updates           {report.updates_applied} applied, "
            f"{report.copies_invalidated} copies invalidated"
        )
    if report.coherency is not None:
        print(_format_coherency(report.coherency, indent="  "))
    if report.aborted:
        print(f"  aborted           errors exceeded --max-errors "
              f"({args.max_errors}); partial report")
    if args.report_out:
        import json

        document = report.to_dict()
        # Context keys so the warehouse can label the row without
        # needing the manifest next to the report.
        document["scheme"] = manifest["scheme"]
        document["arch"] = manifest["arch"]
        with open(args.report_out, "w") as f:
            json.dump(document, f, indent=2, sort_keys=True)
        print(f"  report -> {args.report_out}")
    return 0


def _cmd_warehouse(args: argparse.Namespace) -> int:
    from repro.obs.warehouse import (
        CANNED_QUERIES,
        Warehouse,
        format_table,
        write_csv,
    )

    with Warehouse(args.db) as warehouse:
        if args.action == "ingest":
            failures = 0
            for path in args.paths:
                try:
                    result = warehouse.ingest(path)
                except (OSError, ValueError) as error:
                    print(f"{path}: {error}", file=sys.stderr)
                    failures += 1
                    continue
                print(result.format_line())
            return 1 if failures else 0
        if args.action == "query":
            if args.sql:
                headers, rows = warehouse.sql(args.sql)
            elif args.name:
                try:
                    headers, rows = warehouse.query(args.name)
                except KeyError as error:
                    print(error.args[0], file=sys.stderr)
                    return 2
            else:
                print("canned queries (repro warehouse query NAME):")
                for name in sorted(CANNED_QUERIES):
                    print(f"  {name:<18} {CANNED_QUERIES[name].description}")
                return 0
            if args.csv:
                sys.stdout.write(write_csv(headers, rows))
            else:
                print(format_table(headers, rows))
            return 0
        if args.action == "report":
            print(warehouse.report())
            return 0
        # poll: scrape the /metrics endpoints of a running serve cluster.
        import time

        from repro.obs.warehouse import poll_metrics

        try:
            manifest = _load_manifest(args.manifest, args.wait)
        except FileNotFoundError as error:
            print(str(error), file=sys.stderr)
            return 2
        for i in range(args.count):
            if i:
                time.sleep(args.interval)
            added = poll_metrics(warehouse, manifest, scraped_at=time.time())
            print(f"scrape {i + 1}/{args.count}: {added} samples")
        return 0


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="cascade-repro",
        description="Reproduction of coordinated cascaded-cache management "
        "(Tang & Chanson, ICDE 2003)",
    )
    parser.add_argument(
        "--version",
        "-V",
        action="version",
        version=f"%(prog)s {__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser("table1", help="regenerate Table 1")
    _add_common(table1)
    table1.set_defaults(func=_cmd_table1)

    sweep = sub.add_parser("sweep", help="cache-size sweep (Figures 6-10)")
    _add_common(sweep)
    sweep.add_argument(
        "--schemes",
        type=_csv_strs,
        default=list(SCHEME_NAMES),
        help="comma-separated scheme names",
    )
    sweep.add_argument(
        "--sizes",
        type=_csv_floats,
        default=list(DEFAULT_CACHE_SIZES),
        help="comma-separated relative cache sizes",
    )
    sweep.add_argument("--radius", type=int, default=4, help="MODULO radius")
    sweep.add_argument(
        "--metrics",
        type=_csv_strs,
        default=list(_DEFAULT_METRICS),
        help="comma-separated metric names",
    )
    _add_grid_args(sweep)
    sweep.add_argument(
        "--provision",
        action="store_true",
        help="joint cache-sizing mode: rerun every (scheme, size) point "
        "under each budget-preserving per-level capacity profile",
    )
    sweep.add_argument(
        "--profiles",
        type=_csv_strs,
        default=None,
        help="comma-separated provisioning profile names "
        f"(default: all of {', '.join(sorted(PROVISION_PROFILES))})",
    )
    sweep.add_argument(
        "--chart",
        action="store_true",
        help="also render each metric as an ASCII chart",
    )
    sweep.add_argument(
        "--save",
        default=None,
        help="write the sweep points to this JSON file",
    )
    sweep.set_defaults(func=_cmd_sweep)

    radius = sub.add_parser("radius", help="MODULO cache-radius ablation")
    _add_common(radius)
    radius.add_argument(
        "--radii", type=_csv_ints, default=[1, 2, 3, 4, 5, 6]
    )
    radius.add_argument("--size", type=float, default=0.03)
    radius.add_argument(
        "--dcache-ratio",
        type=float,
        default=3.0,
        help="d-cache size as a multiple of the main cache's object count",
    )
    radius.add_argument(
        "--metrics",
        type=_csv_strs,
        default=["latency", "byte_hit_ratio", "cache_load"],
    )
    _add_grid_args(radius)
    radius.set_defaults(func=_cmd_radius)

    analyze = sub.add_parser("analyze", help="statistics of a trace CSV")
    analyze.add_argument("trace", help="trace CSV path")
    analyze.set_defaults(func=_cmd_analyze)

    compare = sub.add_parser(
        "compare", help="diff two saved sweep-result JSON files"
    )
    compare.add_argument("baseline", help="baseline results JSON")
    compare.add_argument("candidate", help="candidate results JSON")
    compare.add_argument(
        "--tolerance", type=float, default=0.02, help="relative tolerance"
    )
    compare.add_argument(
        "--metrics",
        type=_csv_strs,
        default=["latency", "byte_hit_ratio", "hops", "cache_load"],
    )
    compare.set_defaults(func=_cmd_compare)

    replay = sub.add_parser("replay", help="replay a trace CSV")
    replay.add_argument("trace", help="trace CSV path")
    replay.add_argument(
        "--arch",
        choices=("en-route", "hierarchical"),
        default="en-route",
    )
    replay.add_argument("--scheme", default="coordinated")
    replay.add_argument(
        "--size", type=float, default=0.03, help="relative cache size"
    )
    replay.add_argument("--seed", type=int, default=0)
    replay.set_defaults(func=_cmd_replay)

    sim = sub.add_parser(
        "sim", help="run each scheme once (with optional --audit)"
    )
    _add_common(sim)
    sim.add_argument(
        "--schemes",
        type=_csv_strs,
        default=list(SCHEME_NAMES),
        help="comma-separated scheme names",
    )
    sim.add_argument(
        "--size", type=float, default=0.03, help="relative cache size"
    )
    sim.add_argument(
        "--dcache-ratio",
        type=float,
        default=3.0,
        help="d-cache size as a multiple of the main cache's object count",
    )
    sim.add_argument(
        "--update-rate",
        type=float,
        default=0.0,
        help="drive a Poisson stream of server-side updates at this "
        "aggregate rate (events per unit trace time; 0 = read-only)",
    )
    sim.add_argument(
        "--save",
        default=None,
        help="write the per-scheme points (with coherency accounting) "
        "to this JSON file (ingestable by `repro warehouse ingest`)",
    )
    _add_coherency_args(sim)
    sim.add_argument(
        "--columnar",
        action="store_true",
        help="build the trace as arrays (generate_columnar, bit-identical "
        "to the default) and take the batched fast path where eligible; "
        "audit and instrumentation flags fall back to the reference loop",
    )
    sim.add_argument(
        "--audit",
        action="store_true",
        help="run under the full correctness audit layer "
        "(invariant sweeps, differential oracles, shadow replay)",
    )
    sim.add_argument(
        "--audit-every",
        type=int,
        default=1000,
        help="requests between periodic invariant sweeps",
    )
    obs = sim.add_argument_group(
        "instrumentation",
        "opt-in observability (see repro.obs); with several --schemes, "
        "output paths get a .{scheme} infix",
    )
    obs.add_argument(
        "--trace-out",
        default=None,
        help="write a JSONL event trace to this path",
    )
    obs.add_argument(
        "--trace-sample-every",
        type=int,
        default=1,
        help="keep every Nth event per kind (systematic sampling)",
    )
    obs.add_argument(
        "--trace-sample-rate",
        type=float,
        default=1.0,
        help="keep each event with this probability (seeded, see --probe-seed)",
    )
    obs.add_argument(
        "--probe-seed",
        type=int,
        default=0,
        help="seed of the probabilistic sampler (deterministic traces)",
    )
    obs.add_argument(
        "--node-stats",
        action="store_true",
        help="print the per-node stat registry table after each run",
    )
    obs.add_argument(
        "--prom-out",
        default=None,
        help="write the per-node counters as Prometheus text to this path",
    )
    obs.add_argument(
        "--timers",
        action="store_true",
        help="time the routing / scheme / DP-solve / victim-selection "
        "phases and print the profile",
    )
    obs.add_argument(
        "--snapshot-every",
        type=int,
        default=0,
        help="take a registry snapshot every N requests "
        "(emitted as 'snapshot' trace events)",
    )
    obs.add_argument(
        "--timeseries-window",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="bin outcomes into windows of this width "
        "(prints CSV unless --timeseries-out is given)",
    )
    obs.add_argument(
        "--timeseries-out",
        default=None,
        help="write the windowed series here (.json for JSON, else CSV)",
    )
    sim.set_defaults(func=_cmd_sim)

    trace_cmd = sub.add_parser(
        "trace", help="filter / summarize a saved JSONL event trace"
    )
    trace_cmd.add_argument("trace", help="JSONL trace path (from sim --trace-out)")
    trace_cmd.add_argument(
        "--kinds",
        type=_csv_strs,
        default=None,
        help="comma-separated event kinds to keep",
    )
    trace_cmd.add_argument(
        "--events",
        action="store_true",
        help="print matching events instead of the summary",
    )
    trace_cmd.add_argument(
        "--limit",
        type=int,
        default=0,
        help="with --events: stop after N events (0 = no limit)",
    )
    trace_cmd.set_defaults(func=_cmd_trace)

    selftest = sub.add_parser(
        "audit-selftest",
        help="prove the audit layer detects seeded mutations",
    )
    selftest.set_defaults(func=_cmd_audit_selftest)

    serve = sub.add_parser(
        "serve", help="run a topology as a live TCP cluster of cache nodes"
    )
    _add_common(serve)
    serve.add_argument(
        "--scheme", default="coordinated", help="caching scheme to serve"
    )
    serve.add_argument(
        "--size", type=float, default=0.03, help="relative cache size"
    )
    serve.add_argument(
        "--dcache-ratio",
        type=float,
        default=3.0,
        help="d-cache size as a multiple of the main cache's object count",
    )
    serve.add_argument(
        "--warmup",
        type=float,
        default=0.5,
        help="warmup fraction recorded in the manifest for load generators",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address for all nodes"
    )
    serve.add_argument(
        "--manifest",
        default="cluster.json",
        help="write node/metrics addresses to this JSON file",
    )
    serve.add_argument(
        "--snapshot",
        default=None,
        help="write a cluster state snapshot here on graceful shutdown",
    )
    serve.add_argument(
        "--no-metrics",
        action="store_true",
        help="do not start the per-node /metrics HTTP endpoints",
    )
    serve.add_argument(
        "--fault-plan",
        default=None,
        help="inject faults from this JSON plan into node-to-node calls "
        "(see examples/fault_plan.json)",
    )
    serve.add_argument(
        "--rpc-timeout",
        type=float,
        default=None,
        help="per-RPC deadline in seconds for node-to-node calls "
        "(default: wait forever)",
    )
    serve.add_argument(
        "--retry-attempts",
        type=int,
        default=3,
        help="total tries per upstream call before failing over",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="split the topology over this many worker processes "
        "(consistent-hash node assignment; 1 = single process)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="per-node admission bound: shed request walks past this many "
        "in flight with a retryable `busy` frame (default: unbounded)",
    )
    serve.add_argument(
        "--trace-out",
        default=None,
        help="record per-hop request spans to this JSONL file (with "
        "--shards > 1 each shard writes PATH.shardN.jsonl); off by "
        "default, and the untraced request path is bit-identical",
    )
    serve.add_argument(
        "--trace-sample-every",
        type=int,
        default=1,
        help="trace every Nth ingress request (1 = every request); "
        "sampling decides at ingress, so sampled traces are complete",
    )
    _add_coherency_args(serve)
    serve.set_defaults(func=_cmd_serve)

    loadgen = sub.add_parser(
        "loadgen", help="drive a served cluster from a generated trace"
    )
    loadgen.add_argument(
        "--manifest",
        default="cluster.json",
        help="manifest JSON written by `serve`",
    )
    loadgen.add_argument(
        "--mode",
        choices=("sequential", "closed", "open"),
        default="closed",
        help="driving mode (sequential replays in exact trace order)",
    )
    loadgen.add_argument(
        "--concurrency",
        type=int,
        default=8,
        help="closed-loop worker count",
    )
    loadgen.add_argument(
        "--speedup",
        type=float,
        default=1000.0,
        help="open-loop trace time compression factor",
    )
    loadgen.add_argument(
        "--requests",
        type=int,
        default=0,
        help="truncate the trace to its first N requests (0 = full trace)",
    )
    loadgen.add_argument(
        "--wait",
        type=float,
        default=10.0,
        help="seconds to wait for the manifest to appear",
    )
    loadgen.add_argument(
        "--report-out",
        "--json",
        dest="report_out",
        default=None,
        help="also write the full report as JSON here (ingestable by "
        "`repro warehouse ingest`)",
    )
    loadgen.add_argument(
        "--max-errors",
        type=int,
        default=0,
        help="abort (gracefully, still emitting the report) once this many "
        "request errors have been counted",
    )
    loadgen.add_argument(
        "--inflight-limit",
        type=int,
        default=0,
        help="open-loop only: cap in-flight requests, shedding fires past "
        "the cap (0 = unbounded)",
    )
    loadgen.add_argument(
        "--busy-retries",
        type=int,
        default=2,
        help="client-side retries when a node sheds with a `busy` frame "
        "before counting the request as rejected",
    )
    loadgen.add_argument(
        "--update-rate",
        type=float,
        default=0.0,
        help="interleave a Poisson stream of origin updates at this "
        "aggregate rate (sequential/open modes; 0 = read-only)",
    )
    _add_coherency_args(loadgen)
    loadgen.set_defaults(func=_cmd_loadgen)

    warehouse = sub.add_parser(
        "warehouse",
        help="sqlite results warehouse: ingest artifacts, run canned "
        "comparison queries",
    )
    warehouse.add_argument(
        "--db",
        default="warehouse.sqlite",
        help="warehouse database path (created on first use)",
    )
    wsub = warehouse.add_subparsers(dest="action", required=True)
    w_ingest = wsub.add_parser(
        "ingest",
        help="ingest artifacts (results/checkpoint/run records/bench "
        "baselines/loadgen reports/span traces/prometheus scrapes); "
        "idempotent -- re-ingesting changes zero rows",
    )
    w_ingest.add_argument("paths", nargs="+", help="artifact files")
    w_query = wsub.add_parser(
        "query", help="run a canned comparison query (no name: list catalog)"
    )
    w_query.add_argument("name", nargs="?", default=None)
    w_query.add_argument(
        "--sql", default=None, help="run this SQL instead of a canned query"
    )
    w_query.add_argument(
        "--csv", action="store_true", help="emit CSV instead of a table"
    )
    wsub.add_parser(
        "report", help="table row counts plus every non-empty canned query"
    )
    w_poll = wsub.add_parser(
        "poll",
        help="scrape a running cluster's /metrics endpoints into the "
        "warehouse timeseries",
    )
    w_poll.add_argument(
        "--manifest",
        default="cluster.json",
        help="manifest JSON written by `serve`",
    )
    w_poll.add_argument(
        "--count", type=int, default=1, help="number of scrapes"
    )
    w_poll.add_argument(
        "--interval",
        type=float,
        default=5.0,
        help="seconds between scrapes",
    )
    w_poll.add_argument(
        "--wait",
        type=float,
        default=10.0,
        help="seconds to wait for the manifest to appear",
    )
    warehouse.set_defaults(func=_cmd_warehouse)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # A downstream pager/head closed the pipe mid-print (e.g.
        # ``repro warehouse query ... | head``).  Point stdout at
        # devnull so the interpreter's exit-time flush cannot raise
        # again, and report the conventional failure code.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
