"""The per-node cache stat registry.

Where the :class:`~repro.metrics.collector.MetricsCollector` aggregates
the paper's *path-level* measures, the registry keeps one
:class:`NodeStats` counter block per cache node, so a run can answer the
section-4 questions the aggregates cannot: which nodes along the cascade
actually serve hits, where the coordinated DP places copies, which
caches churn, and how much piggybacked control traffic each node
carries.

Counters cover the **whole** replay, warm-up included (like the
interval collector): placement dynamics during warm-up are exactly what
the per-node lens is for.  The registry is fed by the engine (request
outcomes), by per-cache observers (evictions, occupancy, invalidation
removals -- see :mod:`repro.obs.instruments`) and by the coordinated
scheme (piggyback bytes).  It never feeds anything back: an instrumented
run's metrics are bit-identical to an uninstrumented one.
"""

from __future__ import annotations

from typing import Dict, List


class NodeStats:
    """Counters of one cache node (all monotone except the high-water mark).

    ``hits``/``misses`` count lookups at this node on the upstream walk
    (a request missing at three nodes before hitting the fourth
    contributes three misses and one hit).  ``bytes_read`` is the serving
    read; ``bytes_written`` the insertion writes -- the per-node split of
    the paper's aggregate cache read/write load.  ``piggyback_bytes`` is
    the node's share of the coordination protocol's wire overhead (see
    ``docs/protocol.md``).

    The resilience block (``rpc_timeouts``, ``rpc_retries``,
    ``failovers``, ``breaker_trips``) counts what this node *survived*
    while forwarding upstream: deadlines that expired, the retries that
    followed, upstream hops skipped by the walk's failover, and circuit
    breakers tripping open.  All zero on a fault-free run -- which is
    exactly what the empty-plan equivalence oracle asserts.

    The scale-out block: ``busy_rejections`` counts requests this node
    shed under admission control (its inflight bound was hit), and
    ``cross_shard_fwds`` counts upstream forwards that left the node's
    shard -- both zero for an unsharded, unbounded cluster, and always
    zero under sequential replay (one request in flight can never trip
    an inflight bound).
    """

    __slots__ = (
        "hits",
        "misses",
        "insertions",
        "evictions",
        "evicted_bytes",
        "bytes_read",
        "bytes_written",
        "occupancy_hwm",
        "piggyback_bytes",
        "dcache_evictions",
        "invalidations",
        "rpc_timeouts",
        "rpc_retries",
        "failovers",
        "breaker_trips",
        "busy_rejections",
        "cross_shard_fwds",
    )

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.evicted_bytes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.occupancy_hwm = 0
        self.piggyback_bytes = 0
        self.dcache_evictions = 0
        self.invalidations = 0
        self.rpc_timeouts = 0
        self.rpc_retries = 0
        self.failovers = 0
        self.breaker_trips = 0
        self.busy_rejections = 0
        self.cross_shard_fwds = 0

    @property
    def requests_seen(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        seen = self.requests_seen
        return self.hits / seen if seen else 0.0

    def to_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class StatRegistry:
    """Per-node :class:`NodeStats`, plus optional periodic snapshots."""

    def __init__(self) -> None:
        self._nodes: Dict[int, NodeStats] = {}
        self.snapshots: List[dict] = []

    def node(self, node: int) -> NodeStats:
        stats = self._nodes.get(node)
        if stats is None:
            stats = NodeStats()
            self._nodes[node] = stats
        return stats

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: int) -> bool:
        return node in self._nodes

    # -- feeds ---------------------------------------------------------------

    def observe_outcome(self, outcome) -> None:
        """Fold one request outcome into the per-node counters.

        Every node strictly below the serving position missed; the
        serving node (when it is a cache, not the origin) hit and read
        the object; every node the scheme inserted at wrote it.
        """
        path = outcome.path
        hit_index = outcome.hit_index
        size = outcome.size
        nodes = self._nodes
        for i in range(hit_index):
            stats = nodes.get(path[i])
            if stats is None:
                stats = self.node(path[i])
            stats.misses += 1
        if hit_index < len(path) - 1:
            stats = nodes.get(path[hit_index])
            if stats is None:
                stats = self.node(path[hit_index])
            stats.hits += 1
            stats.bytes_read += size
        for node in outcome.inserted_nodes:
            stats = nodes.get(node)
            if stats is None:
                stats = self.node(node)
            stats.insertions += 1
            stats.bytes_written += size

    def record_eviction(self, node: int, victims: int, freed_bytes: int) -> None:
        stats = self.node(node)
        stats.evictions += victims
        stats.evicted_bytes += freed_bytes

    def record_dcache_eviction(self, node: int, victims: int) -> None:
        self.node(node).dcache_evictions += victims

    def record_occupancy(self, node: int, used_bytes: int) -> None:
        stats = self.node(node)
        if used_bytes > stats.occupancy_hwm:
            stats.occupancy_hwm = used_bytes

    def record_invalidation(self, node: int) -> None:
        self.node(node).invalidations += 1

    def add_piggyback(self, node: int, nbytes: int) -> None:
        self.node(node).piggyback_bytes += nbytes

    # -- readouts ------------------------------------------------------------

    def snapshot(self) -> Dict[int, dict]:
        """Current counters of every node, in node order."""
        return {
            node: self._nodes[node].to_dict() for node in sorted(self._nodes)
        }

    def take_snapshot(self, request_index: int) -> dict:
        """Record (and return) a point-in-time snapshot of all nodes."""
        snap = {"request_index": request_index, "nodes": self.snapshot()}
        self.snapshots.append(snap)
        return snap

    def total(self, field: str) -> int:
        """Sum of one counter across all nodes (used by tests/exports)."""
        return sum(getattr(stats, field) for stats in self._nodes.values())
