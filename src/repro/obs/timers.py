"""Lightweight phase timers: where does an engine-second go?

The engine's replay loop spends its time in a handful of phases --
routing the request, letting the scheme process it, and inside the
scheme the DP solve and the policies' victim selection.  When a
:class:`PhaseTimers` rides along a run (via
:class:`~repro.obs.instruments.Instruments`) each phase accumulates its
call count and wall-clock total, so a "coordinated is slow" observation
becomes "78% of the time is victim selection" before anyone reaches for
a profiler.

Timing uses explicit ``perf_counter`` deltas handed to :meth:`add`
rather than context managers: the instrumented sites are hot, and two
``perf_counter()`` calls plus one ``add`` are the entire overhead.
"""

from __future__ import annotations

from typing import Dict, List

# Canonical phase names used by the engine and scheme instrumentation.
PHASE_ROUTING = "routing"
PHASE_SCHEME = "scheme"
PHASE_DP_SOLVE = "dp-solve"
PHASE_VICTIM_SELECT = "victim-select"


class PhaseTimers:
    """Accumulates (calls, seconds) per named phase."""

    __slots__ = ("_acc",)

    def __init__(self) -> None:
        self._acc: Dict[str, List] = {}

    def add(self, phase: str, seconds: float) -> None:
        bucket = self._acc.get(phase)
        if bucket is None:
            self._acc[phase] = [1, seconds]
        else:
            bucket[0] += 1
            bucket[1] += seconds

    def summary(self) -> Dict[str, dict]:
        """Per-phase totals: calls, seconds, and mean microseconds/call."""
        return {
            phase: {
                "calls": calls,
                "seconds": seconds,
                "mean_us": (seconds / calls) * 1e6 if calls else 0.0,
            }
            for phase, (calls, seconds) in sorted(self._acc.items())
        }

    def format(self) -> str:
        """Aligned text table of the phase totals."""
        rows = self.summary()
        if not rows:
            return "no phases timed"
        lines = [f"{'phase':<16} {'calls':>10} {'seconds':>10} {'us/call':>10}"]
        for phase, row in rows.items():
            lines.append(
                f"{phase:<16} {row['calls']:>10} "
                f"{row['seconds']:>10.3f} {row['mean_us']:>10.1f}"
            )
        return "\n".join(lines)
