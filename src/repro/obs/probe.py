"""The probe: a sampleable structured-event emitter.

Instrumented code reports what happened -- a request served, a placement
decided, victims evicted -- as small dictionaries ("events") pushed into
a *sink* (any callable; usually a
:class:`~repro.obs.export.JsonlTraceWriter`).  Probes are **opt-in**: the
engine and the schemes carry no probe by default, and every emission
site guards with a cheap ``None`` check, so an uninstrumented run pays
nothing and an instrumented run's metrics are bit-identical (probes only
observe, never decide).

Hot emitters use the two-step protocol to avoid building event
dictionaries that sampling would discard::

    if probe is not None and probe.sample("eviction"):
        probe.write("eviction", node=node, freed=freed, ...)

:meth:`Probe.sample` advances the per-kind sampling state exactly once
per candidate event and returns whether this event passes; a matching
:meth:`Probe.write` must follow every ``True``.  ``emit()`` bundles both
for non-hot callers.

Sampling is deterministic: the rate filter draws from a
``random.Random`` seeded at construction, so two probes configured
identically select the same events from the same event stream.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, Optional

# The event vocabulary.  Every event dictionary carries at least
# ``kind`` (one of these) plus ``i`` (the request index) where the
# emitter knows it; the remaining fields are kind-specific.
EVENT_KINDS = (
    "request",          # one request served (path, hit node, insertions)
    "placement",        # a placement decision (candidates, chosen, gain)
    "eviction",         # main-cache eviction (policy, victims, freed bytes)
    "dcache-eviction",  # descriptor dropped out of a d-cache
    "invalidation",     # origin update dropped cached copies
    "snapshot",         # periodic stat-registry snapshot
    "span",             # one serve-side hop of a distributed request walk
)


class Probe:
    """Emits structured events into a sink, with deterministic sampling.

    ``sample_every`` keeps every Nth candidate event of each kind (the
    counter is per kind, so sparse kinds are not starved by chatty
    ones); ``sample_rate`` additionally keeps each surviving event with
    the given probability, drawn from a ``seed``-ed RNG.  ``kinds``
    restricts emission to the given event kinds.  A probe constructed
    with ``enabled=False`` is inert: callers treat it exactly like no
    probe at all (see :meth:`repro.obs.instruments.Instruments`).
    """

    __slots__ = (
        "sink",
        "enabled",
        "sample_every",
        "sample_rate",
        "kinds",
        "emitted",
        "dropped",
        "_counts",
        "_rng",
    )

    def __init__(
        self,
        sink: Callable[[dict], None],
        enabled: bool = True,
        sample_every: int = 1,
        sample_rate: float = 1.0,
        seed: int = 0,
        kinds: Optional[Iterable[str]] = None,
    ) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        if kinds is not None:
            unknown = set(kinds) - set(EVENT_KINDS)
            if unknown:
                raise ValueError(f"unknown event kinds: {sorted(unknown)}")
        self.sink = sink
        self.enabled = enabled
        self.sample_every = sample_every
        self.sample_rate = sample_rate
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.emitted = 0
        self.dropped = 0
        self._counts: Dict[str, int] = {}
        self._rng = random.Random(seed)

    def sample(self, kind: str) -> bool:
        """Decide whether the next event of ``kind`` should be emitted.

        Advances the sampling state (call exactly once per candidate
        event); filtered-out kinds consume no sampling state, so the
        selection among the kinds a probe listens to is independent of
        the kinds it ignores.
        """
        if not self.enabled:
            return False
        if self.kinds is not None and kind not in self.kinds:
            return False
        count = self._counts.get(kind, 0)
        self._counts[kind] = count + 1
        if count % self.sample_every != 0:
            self.dropped += 1
            return False
        if self.sample_rate < 1.0 and self._rng.random() >= self.sample_rate:
            self.dropped += 1
            return False
        return True

    def write(self, kind: str, **fields) -> None:
        """Push one event unconditionally (after a ``True`` sample())."""
        event = {"kind": kind}
        event.update(fields)
        self.sink(event)
        self.emitted += 1

    def emit(self, kind: str, **fields) -> bool:
        """Sample-then-write convenience; returns whether it was emitted."""
        if not self.sample(kind):
            return False
        self.write(kind, **fields)
        return True
