"""Exporters: trace files, node-stat tables, Prometheus text.

Three ways out of the instrumentation layer:

* :class:`JsonlTraceWriter` -- the probe sink behind ``repro sim
  --trace-out``: one JSON object per line, append-as-you-go, so a killed
  run leaves a readable prefix.  :func:`read_trace_events` is its
  reader (used by the ``repro trace`` subcommand), tolerant of a
  truncated final line.
* :func:`format_node_stats` -- the per-node summary table printed by
  ``--node-stats``.
* :func:`prometheus_text` -- a Prometheus text-exposition dump of the
  same counters (``repro_cache_hits_total{node="3"} 42``), so a run's
  registry can be diffed or scraped with standard tooling.

:func:`summarize_trace_events` folds a saved trace back into per-kind /
per-node totals -- including the per-node insertion counts that must
agree with the live stat registry (the exporter-level consistency the
tests pin down).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, Optional, Set

# Columns of the per-node table / Prometheus dump, in display order,
# mapping field name -> (short header, prometheus metric suffix).
_NODE_FIELDS = (
    ("hits", "hits", "hits_total"),
    ("misses", "misses", "misses_total"),
    ("insertions", "ins", "insertions_total"),
    ("evictions", "evict", "evictions_total"),
    ("evicted_bytes", "evictB", "evicted_bytes_total"),
    ("bytes_read", "readB", "read_bytes_total"),
    ("bytes_written", "writeB", "written_bytes_total"),
    ("occupancy_hwm", "hwmB", "occupancy_hwm_bytes"),
    ("piggyback_bytes", "piggyB", "piggyback_bytes_total"),
    ("dcache_evictions", "dEvict", "dcache_evictions_total"),
    ("invalidations", "inval", "invalidations_total"),
    ("rpc_timeouts", "rpcTO", "rpc_timeouts_total"),
    ("rpc_retries", "retry", "rpc_retries_total"),
    ("failovers", "failov", "failovers_total"),
    ("breaker_trips", "brkr", "breaker_trips_total"),
    ("busy_rejections", "busy", "busy_rejections_total"),
    ("cross_shard_fwds", "xfwd", "cross_shard_fwds_total"),
)


class JsonlTraceWriter:
    """Probe sink writing one compact JSON object per event line.

    Usable as a context manager; ``events_written`` is the line count.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._file = open(self.path, "w")
        self.events_written = 0

    def __call__(self, event: dict) -> None:
        self._file.write(json.dumps(event, separators=(",", ":")) + "\n")
        self.events_written += 1

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_trace_events(
    path: str | Path, kinds: Optional[Iterable[str]] = None
) -> Iterator[dict]:
    """Stream events from a JSONL trace file, optionally filtered by kind.

    A truncated or garbled trailing line (a killed run's signature) is
    skipped, mirroring the checkpoint reader's tolerance.
    """
    wanted = frozenset(kinds) if kinds is not None else None
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(event, dict):
                continue
            if wanted is not None and event.get("kind") not in wanted:
                continue
            yield event


@dataclass
class TraceSummary:
    """Folded view of one event trace (see :func:`summarize_trace_events`)."""

    events: int = 0
    kind_counts: Dict[str, int] = field(default_factory=dict)
    requests: int = 0
    origin_served: int = 0
    hits_by_node: Dict[int, int] = field(default_factory=dict)
    insertions_by_node: Dict[int, int] = field(default_factory=dict)
    evictions_by_node: Dict[int, int] = field(default_factory=dict)
    freed_bytes_by_node: Dict[int, int] = field(default_factory=dict)
    dcache_evictions_by_node: Dict[int, int] = field(default_factory=dict)
    invalidated_copies: int = 0
    # Serve-side distributed-tracing spans (kind "span").  Spans describe
    # protocol hops, not simulator requests, so they fold into their own
    # totals and never perturb the request/hit accounting above.
    spans: int = 0
    span_trace_ids: Set[str] = field(default_factory=set)
    spans_by_node: Dict[int, int] = field(default_factory=dict)
    span_shards: Set[int] = field(default_factory=set)
    span_retries: int = 0
    span_failovers: int = 0
    span_errors: int = 0

    @property
    def span_traces(self) -> int:
        """Distinct request walks covered by the folded spans."""
        return len(self.span_trace_ids)

    def format(self) -> str:
        lines = [f"{self.events} events"]
        for kind in sorted(self.kind_counts):
            lines.append(f"  {kind:<16} {self.kind_counts[kind]}")
        if self.requests:
            cache_served = self.requests - self.origin_served
            lines.append(
                f"requests: {self.requests} "
                f"({cache_served} cache-served, {self.origin_served} origin)"
            )
        if self.hits_by_node:
            lines.append("hits by node:")
            for node in sorted(self.hits_by_node):
                lines.append(f"  node {node:<6} {self.hits_by_node[node]}")
        if self.insertions_by_node:
            lines.append("insertions by node (from placement decisions):")
            for node in sorted(self.insertions_by_node):
                lines.append(
                    f"  node {node:<6} {self.insertions_by_node[node]}"
                )
        if self.evictions_by_node:
            lines.append("evictions by node:")
            for node in sorted(self.evictions_by_node):
                freed = self.freed_bytes_by_node.get(node, 0)
                lines.append(
                    f"  node {node:<6} {self.evictions_by_node[node]} "
                    f"({freed} B freed)"
                )
        if self.dcache_evictions_by_node:
            total = sum(self.dcache_evictions_by_node.values())
            lines.append(f"d-cache evictions: {total}")
        if self.invalidated_copies:
            lines.append(f"invalidated copies: {self.invalidated_copies}")
        if self.spans:
            shards = (
                f" over {len(self.span_shards)} shards"
                if self.span_shards
                else ""
            )
            lines.append(
                f"serve spans: {self.spans} across "
                f"{self.span_traces} traces{shards}"
            )
            if self.span_retries or self.span_failovers or self.span_errors:
                lines.append(
                    f"  retries {self.span_retries}, "
                    f"failovers {self.span_failovers}, "
                    f"errors {self.span_errors}"
                )
        return "\n".join(lines)


def summarize_trace_events(events: Iterable[dict]) -> TraceSummary:
    """Fold a stream of trace events into per-kind / per-node totals."""
    summary = TraceSummary()
    for event in events:
        kind = event.get("kind", "?")
        summary.events += 1
        summary.kind_counts[kind] = summary.kind_counts.get(kind, 0) + 1
        if kind == "request":
            summary.requests += 1
            hit_node = event.get("hit_node")
            if hit_node is None:
                summary.origin_served += 1
            else:
                summary.hits_by_node[hit_node] = (
                    summary.hits_by_node.get(hit_node, 0) + 1
                )
        elif kind == "placement":
            for node in event.get("inserted", ()):
                summary.insertions_by_node[node] = (
                    summary.insertions_by_node.get(node, 0) + 1
                )
        elif kind == "eviction":
            node = event.get("node")
            victims = event.get("victims", ())
            summary.evictions_by_node[node] = (
                summary.evictions_by_node.get(node, 0) + len(victims)
            )
            summary.freed_bytes_by_node[node] = (
                summary.freed_bytes_by_node.get(node, 0)
                + int(event.get("freed", 0))
            )
        elif kind == "dcache-eviction":
            node = event.get("node")
            summary.dcache_evictions_by_node[node] = (
                summary.dcache_evictions_by_node.get(node, 0)
                + len(event.get("victims", ()))
            )
        elif kind == "invalidation":
            summary.invalidated_copies += int(event.get("copies", 0))
        elif kind == "span":
            summary.spans += 1
            trace_id = event.get("trace")
            if trace_id is not None:
                summary.span_trace_ids.add(str(trace_id))
            node = event.get("node")
            if node is not None:
                summary.spans_by_node[node] = (
                    summary.spans_by_node.get(node, 0) + 1
                )
            shard = event.get("shard")
            if shard is not None:
                summary.span_shards.add(shard)
            summary.span_retries += int(event.get("retries", 0) or 0)
            summary.span_failovers += int(event.get("failovers", 0) or 0)
            if event.get("status") not in (None, "ok"):
                summary.span_errors += 1
    return summary


def _node_sort_key(node):
    """Order node ids numerically even after a JSON round-trip strings them."""
    try:
        return (0, int(node))
    except (TypeError, ValueError):
        return (1, str(node))


def format_node_stats(node_stats: Dict[int, dict]) -> str:
    """The per-node summary table (``repro sim --node-stats``)."""
    if not node_stats:
        return "no node stats recorded"
    headers = ["node", "hit%"] + [short for _, short, _ in _NODE_FIELDS]
    rows = []
    for node in sorted(node_stats, key=_node_sort_key):
        stats = node_stats[node]
        seen = stats.get("hits", 0) + stats.get("misses", 0)
        hit_pct = 100.0 * stats.get("hits", 0) / seen if seen else 0.0
        cells = [str(node), f"{hit_pct:.1f}"]
        cells += [str(stats.get(name, 0)) for name, _, _ in _NODE_FIELDS]
        rows.append(cells)
    widths = [
        max(len(header), *(len(row[i]) for row in rows)) + 2
        for i, header in enumerate(headers)
    ]
    lines = ["".join(h.rjust(w) for h, w in zip(headers, widths))]
    for cells in rows:
        lines.append("".join(c.rjust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def escape_label_value(value) -> str:
    """Escape one Prometheus label value per the text-exposition spec.

    Backslash, double quote and newline are the three characters the
    format requires escaping inside ``label="..."``.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


_METRIC_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_suffix(counter: str) -> str:
    """Prometheus metric suffix for a counter the table does not know."""
    return _METRIC_NAME_BAD.sub("_", counter) + "_total"


def prometheus_text(
    node_stats: Dict[int, dict], prefix: str = "repro_cache"
) -> str:
    """Prometheus text-exposition dump of the per-node counters.

    Counters use the ``_total`` convention; the occupancy high-water
    mark is exported as a plain gauge.  The known registry counters
    render in table order with their stable metric names; any *extra*
    numeric counter present in a stats dict (a newer registry talking to
    an older exporter) is appended generically instead of being silently
    dropped from scrapes.  Label values are escaped per the exposition
    format, so arbitrary node ids can never corrupt a scrape.
    """
    lines = []
    known = {name for name, _, _ in _NODE_FIELDS}
    nodes = sorted(node_stats, key=_node_sort_key)
    extra = sorted(
        {
            counter
            for node in nodes
            for counter, value in node_stats[node].items()
            if counter not in known and isinstance(value, (int, float))
        }
    )
    fields = [
        (name, suffix, "gauge" if name == "occupancy_hwm" else "counter")
        for name, _, suffix in _NODE_FIELDS
    ] + [(name, _metric_suffix(name), "counter") for name in extra]
    for name, suffix, kind in fields:
        metric = f"{prefix}_{suffix}"
        lines.append(f"# HELP {metric} per-node {name.replace('_', ' ')}")
        lines.append(f"# TYPE {metric} {kind}")
        for node in nodes:
            value = node_stats[node].get(name, 0)
            lines.append(
                f'{metric}{{node="{escape_label_value(node)}"}} {value}'
            )
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> Iterator[tuple]:
    """Parse text-exposition lines back into ``(metric, labels, value)``.

    The inverse of :func:`prometheus_text` for the subset of the format
    this package emits (no timestamps, no exemplars): comment lines are
    skipped, label values are unescaped, and unparsable lines are
    ignored rather than fatal, so scrapes from foreign exporters can be
    ingested best-effort.
    """
    sample = re.compile(
        r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)\s*$'
    )
    label = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = sample.match(line)
        if match is None:
            continue
        try:
            value = float(match.group(4))
        except ValueError:
            continue
        labels = {}
        for name, raw in label.findall(match.group(3) or ""):
            labels[name] = (
                raw.replace('\\"', '"')
                .replace("\\n", "\n")
                .replace("\\\\", "\\")
            )
        yield match.group(1), labels, value
