"""Reassembling distributed request traces from serve-side span events.

The serving layer (``repro.serve.tracing``) emits one ``span`` event per
protocol hop of a request walk -- ingress ``get``, each upstream
``fwd``, push invalidations -- through the standard probe/JSONL
machinery, with every span carrying its trace id, its own span id and
the id of the span that forwarded to it.  Spans from a sharded cluster
land in per-shard JSONL files written by independent processes; nothing
about ordering or file boundaries can be assumed.

:func:`reconstruct_traces` folds any iterable of trace events (span
events mixed freely with simulator events) back into one
:class:`SpanTree` per trace id: parent/child links restored from the
ids, children ordered by path position, and the walk-level facts --
nodes visited in order, shards covered, hops skipped by failover --
recomputed from the spans alone so they can be checked against the
frame path the cluster reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

__all__ = ["Span", "SpanTree", "reconstruct_traces"]


@dataclass
class Span:
    """One reconstructed protocol hop of a traced request walk."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    node: Optional[int] = None
    shard: Optional[int] = None
    op: str = "walk"
    status: str = "ok"
    index: Optional[int] = None
    path: Optional[List[int]] = None
    skipped: List[int] = field(default_factory=list)
    hit_index: Optional[int] = None
    object_id: Optional[int] = None
    size: Optional[int] = None
    time: Optional[float] = None
    start: Optional[float] = None
    wall: Optional[float] = None
    upstream: Optional[float] = None
    lookup: Optional[float] = None
    decide: Optional[float] = None
    deliver: Optional[float] = None
    retries: int = 0
    failovers: int = 0
    piggyback_bytes: int = 0
    crossed_shard: bool = False
    inflight: Optional[int] = None
    children: List["Span"] = field(default_factory=list)

    @classmethod
    def from_event(cls, event: dict) -> Optional["Span"]:
        """Build a span from one trace event; ``None`` if not a span."""
        if event.get("kind") != "span":
            return None
        trace_id = event.get("trace")
        span_id = event.get("span")
        if trace_id is None or span_id is None:
            return None
        path = event.get("path")
        return cls(
            trace_id=str(trace_id),
            span_id=str(span_id),
            parent_id=(
                str(event["parent"]) if event.get("parent") is not None
                else None
            ),
            node=event.get("node"),
            shard=event.get("shard"),
            op=str(event.get("op", "walk")),
            status=str(event.get("status", "ok")),
            index=event.get("index"),
            path=list(path) if isinstance(path, (list, tuple)) else None,
            skipped=list(event.get("skipped", ()) or ()),
            hit_index=event.get("hit_index"),
            object_id=event.get("object"),
            size=event.get("size"),
            time=event.get("t"),
            start=event.get("start"),
            wall=event.get("wall"),
            upstream=event.get("upstream"),
            lookup=event.get("lookup"),
            decide=event.get("decide"),
            deliver=event.get("deliver"),
            retries=int(event.get("retries", 0) or 0),
            failovers=int(event.get("failovers", 0) or 0),
            piggyback_bytes=int(event.get("piggyback", 0) or 0),
            crossed_shard=bool(event.get("xshard", False)),
            inflight=event.get("inflight"),
        )

    def _sort_key(self):
        index = self.index if self.index is not None else -1
        return (index, self.span_id)


@dataclass
class SpanTree:
    """All spans of one trace, re-linked into their forwarding tree.

    ``roots`` is normally a single ingress span; a trace whose root span
    was sampled away (or lives in a file not ingested) reconstructs into
    a forest with every orphaned subtree promoted to a root, so partial
    traces still render instead of vanishing.
    """

    trace_id: str
    spans: List[Span]
    roots: List[Span]

    @property
    def span_count(self) -> int:
        return len(self.spans)

    def walk_spans(self) -> List[Span]:
        """The request-walk hops (op ``walk``), in path order."""
        return sorted(
            (s for s in self.spans if s.op == "walk"),
            key=Span._sort_key,
        )

    def nodes_visited(self) -> List[int]:
        """Node ids of the walk hops, in path order."""
        return [s.node for s in self.walk_spans() if s.node is not None]

    def shards(self) -> Set[int]:
        """Every shard a span of this trace executed on."""
        return {s.shard for s in self.spans if s.shard is not None}

    def skipped_indices(self) -> List[int]:
        """Path positions bypassed by failover, in walk order.

        A skipped node never executes, so it has no span; the skip is
        recorded on the surviving hop that forwarded past it.
        """
        merged: List[int] = []
        for span in self.walk_spans():
            for index in span.skipped:
                if index not in merged:
                    merged.append(index)
        return sorted(merged)

    def hit_index(self) -> Optional[int]:
        """The path position that served the request, if any span knows."""
        for span in self.walk_spans():
            if span.hit_index is not None:
                return span.hit_index
        return None

    def total_retries(self) -> int:
        return sum(s.retries for s in self.spans)

    def total_failovers(self) -> int:
        return sum(s.failovers for s in self.spans)

    def format(self) -> str:
        """ASCII rendering of the forwarding tree, one span per line."""
        lines = [f"trace {self.trace_id}: {self.span_count} spans"]

        def render(span: Span, depth: int) -> None:
            where = f"node {span.node}"
            if span.shard is not None:
                where += f"@shard{span.shard}"
            detail = [span.op, span.status]
            if span.index is not None:
                detail.append(f"index={span.index}")
            if span.hit_index is not None:
                detail.append(f"hit_index={span.hit_index}")
            if span.skipped:
                detail.append(f"skipped={span.skipped}")
            if span.retries:
                detail.append(f"retries={span.retries}")
            if span.wall is not None:
                detail.append(f"wall={span.wall * 1e3:.3f}ms")
            lines.append(
                "  " * (depth + 1) + f"{where}  " + " ".join(detail)
            )
            for child in sorted(span.children, key=Span._sort_key):
                render(child, depth + 1)

        for root in sorted(self.roots, key=Span._sort_key):
            render(root, 0)
        return "\n".join(lines)


def reconstruct_traces(events: Iterable[dict]) -> Dict[str, SpanTree]:
    """Reassemble span events into one :class:`SpanTree` per trace id.

    Tolerates mixed event kinds (simulator events are skipped), any
    event order (per-shard files concatenate in any sequence), duplicate
    span ids (last event wins), and missing parents (the orphan becomes
    an extra root rather than being dropped).
    """
    by_trace: Dict[str, Dict[str, Span]] = {}
    for event in events:
        span = Span.from_event(event)
        if span is None:
            continue
        by_trace.setdefault(span.trace_id, {})[span.span_id] = span
    trees: Dict[str, SpanTree] = {}
    for trace_id, spans in by_trace.items():
        roots: List[Span] = []
        for span in spans.values():
            parent = (
                spans.get(span.parent_id)
                if span.parent_id is not None
                else None
            )
            if parent is None or parent is span:
                roots.append(span)
            else:
                parent.children.append(span)
        trees[trace_id] = SpanTree(
            trace_id=trace_id,
            spans=sorted(spans.values(), key=Span._sort_key),
            roots=roots,
        )
    return trees
