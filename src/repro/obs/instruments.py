"""The instrumentation bundle threaded through a run.

:class:`Instruments` groups the three observation channels -- a
:class:`~repro.obs.probe.Probe` (structured events), a
:class:`~repro.obs.registry.StatRegistry` (per-node counters) and
:class:`~repro.obs.timers.PhaseTimers` (phase attribution) -- behind a
single object the engine accepts as ``SimulationEngine.run(...,
instruments=...)``.  The engine attaches it to the scheme
(:meth:`~repro.schemes.base.CachingScheme.attach_instruments`), which
wires a per-node :class:`CacheObserver` onto every cache it creates, so
cache-level happenings (evictions, occupancy, invalidation removals)
reach the registry and the probe without the policies knowing anything
about observability.

Like the audit layer this is strictly one-way: nothing here may
influence a decision, and a run's metrics are bit-identical with and
without instruments attached.
"""

from __future__ import annotations

from time import perf_counter
from typing import List, Optional

from repro.obs.probe import Probe
from repro.obs.registry import StatRegistry
from repro.obs.timers import PHASE_VICTIM_SELECT, PhaseTimers


class Instruments:
    """Probe + registry + timers riding along one simulation run.

    ``snapshot_every`` asks the engine to record a registry snapshot
    (and emit a ``snapshot`` event) every N requests.  A probe
    constructed with ``enabled=False`` is normalized away here, so the
    engine's single ``instruments.active`` check is all that separates
    "off" from "on".
    """

    __slots__ = ("probe", "registry", "timers", "snapshot_every", "request_index")

    def __init__(
        self,
        probe: Optional[Probe] = None,
        registry: Optional[StatRegistry] = None,
        timers: Optional[PhaseTimers] = None,
        snapshot_every: int = 0,
    ) -> None:
        if snapshot_every < 0:
            raise ValueError("snapshot_every must be non-negative")
        if probe is not None and not probe.enabled:
            probe = None
        self.probe = probe
        self.registry = registry
        self.timers = timers
        self.snapshot_every = snapshot_every
        # Advanced by the engine once per request so cache- and
        # scheme-level events can stamp the request they belong to.
        self.request_index = -1

    @property
    def active(self) -> bool:
        """Whether any channel is live (inactive bundles cost nothing)."""
        return (
            self.probe is not None
            or self.registry is not None
            or self.timers is not None
        )

    def cache_observer(self, node: int) -> "CacheObserver":
        return CacheObserver(node, self)

    def dcache_observer(self, node: int) -> "DcacheObserver":
        return DcacheObserver(node, self)


class CacheObserver:
    """Per-node hook object installed on a main cache's ``observer`` slot.

    The :class:`~repro.cache.base.Cache` base class calls these at its
    mutation points; every method is a leaf that updates counters or
    emits one event.
    """

    __slots__ = ("node", "instruments")

    def __init__(self, node: int, instruments: Instruments) -> None:
        self.node = node
        self.instruments = instruments

    def select_victims(self, cache, needed_bytes: int, now: float, exclude):
        """Run (and, when timed, attribute) the policy's victim selection."""
        timers = self.instruments.timers
        if timers is None:
            return cache.select_victims(needed_bytes, now, exclude=exclude)
        started = perf_counter()
        victims = cache.select_victims(needed_bytes, now, exclude=exclude)
        timers.add(PHASE_VICTIM_SELECT, perf_counter() - started)
        return victims

    def on_evictions(self, cache, victims: List, now: float) -> None:
        freed = sum(v.size for v in victims)
        inst = self.instruments
        registry = inst.registry
        if registry is not None:
            registry.record_eviction(self.node, len(victims), freed)
        probe = inst.probe
        if probe is not None and probe.sample("eviction"):
            probe.write(
                "eviction",
                i=inst.request_index,
                t=now,
                node=self.node,
                policy=cache.policy_name,
                victims=[v.object_id for v in victims],
                freed=freed,
            )

    def on_occupancy(self, used_bytes: int) -> None:
        registry = self.instruments.registry
        if registry is not None:
            registry.record_occupancy(self.node, used_bytes)

    def on_invalidation(self, entry) -> None:
        registry = self.instruments.registry
        if registry is not None:
            registry.record_invalidation(self.node)


class DcacheObserver:
    """Hook object installed on a node's d-cache ``observer`` slot."""

    __slots__ = ("node", "instruments")

    def __init__(self, node: int, instruments: Instruments) -> None:
        self.node = node
        self.instruments = instruments

    def on_evictions(self, dcache, victims: List) -> None:
        inst = self.instruments
        registry = inst.registry
        if registry is not None:
            registry.record_dcache_eviction(self.node, len(victims))
        probe = inst.probe
        if probe is not None and probe.sample("dcache-eviction"):
            probe.write(
                "dcache-eviction",
                i=inst.request_index,
                node=self.node,
                policy=dcache.policy,
                victims=[d.object_id for d in victims],
            )
