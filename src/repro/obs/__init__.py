"""``repro.obs``: the opt-in per-node instrumentation layer.

Four parts (see ``docs/architecture.md``, "Observing a run"):

* :mod:`repro.obs.probe` -- structured, sampleable events;
* :mod:`repro.obs.registry` -- the per-node cache stat registry;
* :mod:`repro.obs.timers` -- lightweight phase timers;
* :mod:`repro.obs.export` -- JSONL traces, node tables, Prometheus text;
* :mod:`repro.obs.spans` -- cross-shard request-tree reconstruction;
* :mod:`repro.obs.warehouse` -- the sqlite results warehouse.

Everything hangs off an :class:`~repro.obs.instruments.Instruments`
bundle passed to ``SimulationEngine.run(..., instruments=...)``; with no
bundle (the default) the simulator runs the exact uninstrumented path.
"""

from repro.obs.export import (
    JsonlTraceWriter,
    escape_label_value,
    format_node_stats,
    parse_prometheus_text,
    prometheus_text,
    read_trace_events,
    summarize_trace_events,
)
from repro.obs.instruments import CacheObserver, DcacheObserver, Instruments
from repro.obs.probe import EVENT_KINDS, Probe
from repro.obs.registry import NodeStats, StatRegistry
from repro.obs.spans import Span, SpanTree, reconstruct_traces
from repro.obs.timers import PhaseTimers
from repro.obs.warehouse import Warehouse

__all__ = [
    "CacheObserver",
    "DcacheObserver",
    "EVENT_KINDS",
    "Instruments",
    "JsonlTraceWriter",
    "NodeStats",
    "PhaseTimers",
    "Probe",
    "Span",
    "SpanTree",
    "StatRegistry",
    "Warehouse",
    "escape_label_value",
    "format_node_stats",
    "parse_prometheus_text",
    "prometheus_text",
    "read_trace_events",
    "reconstruct_traces",
    "summarize_trace_events",
]
