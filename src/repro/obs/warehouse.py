"""The results warehouse: every artifact format, one queryable store.

The repo's telemetry lands in disconnected files -- sweep results JSON,
checkpoint JSONL, RunRecord sidecars, ``BENCH_sim.json`` /
``BENCH_serve.json`` trajectories, loadgen reports, Prometheus scrapes,
span traces -- and comparing the paper's claims across schemes,
architectures or PRs meant ad-hoc scripting over the pile.  The
warehouse is a stdlib-``sqlite3`` database with a stable table per
artifact family, an auto-detecting :meth:`Warehouse.ingest`, and a
catalog of canned comparison queries (``repro warehouse query``)
rendering the paper-style tables straight from ingested records.

**Idempotency is structural.**  Every row carries a ``content_hash`` --
sha256 over the table name plus the canonical JSON of the source record
-- under a UNIQUE constraint, and all inserts are ``INSERT OR IGNORE``:
ingesting the same artifact twice changes zero rows, and re-ingesting a
checkpoint rewritten by ``--resume`` never double-counts a point (a
resumed point re-executes deterministically, reproducing the same
content hash).

**Fidelity is exact.**  SQLite ``REAL`` is the same IEEE-754 double a
Python float is, so a metric ingested from a RunRecord or sweep point
round-trips bit-identical through ``repro warehouse query`` -- the
acceptance oracle the tests pin down.  (The one representational
caveat: SQLite stores NaN as NULL, so absent latency percentiles read
back as ``None``.)
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
import sqlite3
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "CANNED_QUERIES",
    "CannedQuery",
    "IngestResult",
    "Warehouse",
    "format_table",
    "poll_metrics",
    "write_csv",
]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS points (
    id INTEGER PRIMARY KEY,
    architecture TEXT,
    scheme TEXT,
    relative_cache_size REAL,
    requests INTEGER,
    hit_ratio REAL,
    byte_hit_ratio REAL,
    mean_latency REAL,
    mean_response_ratio REAL,
    mean_traffic_byte_hops REAL,
    mean_hops REAL,
    mean_read_load REAL,
    mean_write_load REAL,
    latency_p50 REAL,
    latency_p90 REAL,
    latency_p99 REAL,
    provision_profile TEXT,
    provision_multipliers TEXT,
    source TEXT,
    content_hash TEXT NOT NULL UNIQUE
);
CREATE TABLE IF NOT EXISTS runs (
    id INTEGER PRIMARY KEY,
    run_key TEXT,
    architecture TEXT,
    scheme TEXT,
    relative_cache_size REAL,
    duration_seconds REAL,
    requests INTEGER,
    requests_per_second REAL,
    worker INTEGER,
    reused INTEGER,
    audit_checks INTEGER,
    audit_violations INTEGER,
    source TEXT,
    content_hash TEXT NOT NULL UNIQUE
);
CREATE TABLE IF NOT EXISTS node_stats (
    id INTEGER PRIMARY KEY,
    run_key TEXT,
    architecture TEXT,
    scheme TEXT,
    node TEXT,
    hits INTEGER,
    misses INTEGER,
    insertions INTEGER,
    evictions INTEGER,
    evicted_bytes INTEGER,
    bytes_read INTEGER,
    bytes_written INTEGER,
    occupancy_hwm INTEGER,
    piggyback_bytes INTEGER,
    dcache_evictions INTEGER,
    invalidations INTEGER,
    rpc_timeouts INTEGER,
    rpc_retries INTEGER,
    failovers INTEGER,
    breaker_trips INTEGER,
    busy_rejections INTEGER,
    cross_shard_fwds INTEGER,
    source TEXT,
    content_hash TEXT NOT NULL UNIQUE
);
CREATE TABLE IF NOT EXISTS audit_violations (
    id INTEGER PRIMARY KEY,
    run_key TEXT,
    scheme TEXT,
    "check" TEXT,
    detail TEXT,
    request_index INTEGER,
    source TEXT,
    content_hash TEXT NOT NULL UNIQUE
);
CREATE TABLE IF NOT EXISTS bench_sim (
    id INTEGER PRIMARY KEY,
    preset TEXT,
    quick INTEGER,
    case_name TEXT,
    reference_rps REAL,
    fast_rps REAL,
    speedup REAL,
    source TEXT,
    content_hash TEXT NOT NULL UNIQUE
);
CREATE TABLE IF NOT EXISTS bench_serve_levels (
    id INTEGER PRIMARY KEY,
    preset TEXT,
    quick INTEGER,
    scheme TEXT,
    arch TEXT,
    shards INTEGER,
    offered_rps REAL,
    offered_requests INTEGER,
    completed INTEGER,
    achieved_rps REAL,
    achieved_ratio REAL,
    errors INTEGER,
    rejected INTEGER,
    shed INTEGER,
    busy_retries INTEGER,
    wall_p50 REAL,
    wall_p90 REAL,
    wall_p99 REAL,
    source TEXT,
    content_hash TEXT NOT NULL UNIQUE
);
CREATE TABLE IF NOT EXISTS bench_serve_saturation (
    id INTEGER PRIMARY KEY,
    preset TEXT,
    quick INTEGER,
    scheme TEXT,
    arch TEXT,
    offered_rps REAL,
    achieved_rps REAL,
    wall_p99 REAL,
    source TEXT,
    content_hash TEXT NOT NULL UNIQUE
);
CREATE TABLE IF NOT EXISTS load_reports (
    id INTEGER PRIMARY KEY,
    mode TEXT,
    requests_total INTEGER,
    requests_measured INTEGER,
    cache_served INTEGER,
    origin_served INTEGER,
    duration_seconds REAL,
    requests_per_second REAL,
    wall_latency_mean REAL,
    wall_latency_p50 REAL,
    wall_latency_p90 REAL,
    wall_latency_p99 REAL,
    updates_applied INTEGER,
    copies_invalidated INTEGER,
    errors INTEGER,
    rejected INTEGER,
    shed INTEGER,
    busy_retries INTEGER,
    aborted INTEGER,
    hit_ratio REAL,
    byte_hit_ratio REAL,
    mean_latency REAL,
    mean_hops REAL,
    source TEXT,
    content_hash TEXT NOT NULL UNIQUE
);
CREATE TABLE IF NOT EXISTS coherency (
    id INTEGER PRIMARY KEY,
    mode TEXT,
    architecture TEXT,
    scheme TEXT,
    context TEXT,
    events_published INTEGER,
    event_deliveries INTEGER,
    polls INTEGER,
    subscriptions INTEGER,
    catchups INTEGER,
    channel_bytes INTEGER,
    inv_frames INTEGER,
    inv_bytes INTEGER,
    protocol_bytes INTEGER,
    stale_hits INTEGER,
    stale_bytes INTEGER,
    copies_invalidated INTEGER,
    stale_copies_evicted INTEGER,
    staleness_p50 REAL,
    staleness_p99 REAL,
    origin_load REAL,
    source TEXT,
    content_hash TEXT NOT NULL UNIQUE
);
CREATE TABLE IF NOT EXISTS metrics_samples (
    id INTEGER PRIMARY KEY,
    scraped_at REAL,
    metric TEXT,
    node TEXT,
    value REAL,
    source TEXT,
    content_hash TEXT NOT NULL UNIQUE
);
CREATE TABLE IF NOT EXISTS spans (
    id INTEGER PRIMARY KEY,
    trace_id TEXT,
    span_id TEXT,
    parent_id TEXT,
    node INTEGER,
    shard INTEGER,
    op TEXT,
    status TEXT,
    path_index INTEGER,
    hit_index INTEGER,
    object_id INTEGER,
    size INTEGER,
    trace_time REAL,
    start REAL,
    wall REAL,
    upstream REAL,
    lookup REAL,
    decide REAL,
    deliver REAL,
    retries INTEGER,
    failovers INTEGER,
    piggyback_bytes INTEGER,
    crossed_shard INTEGER,
    inflight INTEGER,
    source TEXT,
    content_hash TEXT NOT NULL UNIQUE
);
"""

_NODE_COUNTERS = (
    "hits",
    "misses",
    "insertions",
    "evictions",
    "evicted_bytes",
    "bytes_read",
    "bytes_written",
    "occupancy_hwm",
    "piggyback_bytes",
    "dcache_evictions",
    "invalidations",
    "rpc_timeouts",
    "rpc_retries",
    "failovers",
    "breaker_trips",
    "busy_rejections",
    "cross_shard_fwds",
)


@dataclass(frozen=True)
class CannedQuery:
    """One entry of the query catalog: name, what it answers, the SQL."""

    name: str
    description: str
    sql: str


CANNED_QUERIES: Dict[str, CannedQuery] = {
    q.name: q
    for q in (
        CannedQuery(
            "scheme-arch",
            "Scheme x architecture comparison (the paper's Figures 6-10 "
            "axes): hit ratio, byte hit ratio, mean latency and load per "
            "ingested sweep point",
            "SELECT architecture, scheme, relative_cache_size, hit_ratio, "
            "byte_hit_ratio, mean_latency, mean_hops, "
            "mean_read_load + mean_write_load AS mean_cache_load "
            "FROM points "
            "ORDER BY architecture, scheme, relative_cache_size",
        ),
        CannedQuery(
            "provisioning",
            "Joint placement + sizing comparison: every sweep point keyed "
            "by its capacity profile (uniform = fixed-size run), so "
            "--provision points render alongside plain ones",
            "SELECT architecture, scheme, relative_cache_size, "
            "COALESCE(provision_profile, 'uniform') AS profile, "
            "hit_ratio, byte_hit_ratio, mean_latency, mean_hops "
            "FROM points "
            "ORDER BY architecture, scheme, relative_cache_size, profile",
        ),
        CannedQuery(
            "overhead",
            "Coordination overhead per scheme x architecture: total "
            "piggyback bytes and per-request byte cost from per-node "
            "counters (the paper's Figure 9 axis)",
            "SELECT architecture, scheme, "
            "SUM(piggyback_bytes) AS piggyback_bytes, "
            "SUM(hits) AS hits, SUM(misses) AS misses "
            "FROM node_stats GROUP BY architecture, scheme "
            "ORDER BY architecture, scheme",
        ),
        CannedQuery(
            "perf-trajectory",
            "Simulator throughput trajectory across ingested BENCH_sim "
            "baselines (PR-over-PR fast-path history)",
            "SELECT source, preset, quick, case_name, reference_rps, "
            "fast_rps, speedup FROM bench_sim ORDER BY source, quick, "
            "case_name",
        ),
        CannedQuery(
            "saturation-knee",
            "Serving saturation-knee history across ingested BENCH_serve "
            "baselines: offered vs achieved rps and p99 at the knee",
            "SELECT source, preset, quick, scheme, arch, offered_rps, "
            "achieved_rps, wall_p99 FROM bench_serve_saturation "
            "ORDER BY source, quick",
        ),
        CannedQuery(
            "violations",
            "Audit violations by scheme and check across every ingested "
            "run record",
            'SELECT scheme, "check", COUNT(*) AS violations '
            'FROM audit_violations GROUP BY scheme, "check" '
            "ORDER BY violations DESC",
        ),
        CannedQuery(
            "loadgen",
            "Ingested load-generator reports: throughput, wall latency "
            "tail, errors and backpressure",
            "SELECT source, mode, requests_total, requests_per_second, "
            "wall_latency_p99, hit_ratio, errors, rejected, shed "
            "FROM load_reports ORDER BY source",
        ),
        CannedQuery(
            "coherency-modes",
            "In-band vs. channel invalidation across ingested sim points, "
            "loadgen reports and snapshots: protocol overhead bytes, "
            "origin load, stale-hit bytes and the staleness tail",
            "SELECT mode, architecture, scheme, context, events_published, "
            "protocol_bytes, origin_load, stale_hits, stale_bytes, "
            "staleness_p50, staleness_p99 FROM coherency "
            "ORDER BY architecture, scheme, context, mode",
        ),
        CannedQuery(
            "slow-traces",
            "The 20 slowest reconstructed request walks by root wall "
            "time, with their retry/failover counts",
            "SELECT trace_id, COUNT(*) AS spans, "
            "COUNT(DISTINCT shard) AS shards, SUM(retries) AS retries, "
            "SUM(failovers) AS failovers, MAX(wall) AS max_wall_s "
            "FROM spans GROUP BY trace_id "
            "ORDER BY max_wall_s DESC LIMIT 20",
        ),
        CannedQuery(
            "trace-shards",
            "Cross-shard coverage per trace: how many shards and nodes "
            "each reconstructed walk touched",
            "SELECT trace_id, COUNT(*) AS spans, "
            "COUNT(DISTINCT shard) AS shards, "
            "COUNT(DISTINCT node) AS nodes, "
            "SUM(CASE WHEN crossed_shard THEN 1 ELSE 0 END) AS xshard_hops "
            "FROM spans GROUP BY trace_id "
            "ORDER BY shards DESC, spans DESC",
        ),
        CannedQuery(
            "metrics-latest",
            "Latest scraped value per (metric, node) across ingested "
            "/metrics samples",
            "SELECT metric, node, value, scraped_at FROM metrics_samples "
            "WHERE id IN (SELECT MAX(id) FROM metrics_samples "
            "GROUP BY metric, node) ORDER BY metric, node",
        ),
    )
}


@dataclass
class IngestResult:
    """What one ingest call did: per-table added/duplicate row counts."""

    path: str
    format: str
    added: Dict[str, int] = field(default_factory=dict)
    duplicates: Dict[str, int] = field(default_factory=dict)

    @property
    def total_added(self) -> int:
        return sum(self.added.values())

    @property
    def total_duplicates(self) -> int:
        return sum(self.duplicates.values())

    def merge(self, other: "IngestResult") -> None:
        for table, count in other.added.items():
            self.added[table] = self.added.get(table, 0) + count
        for table, count in other.duplicates.items():
            self.duplicates[table] = self.duplicates.get(table, 0) + count

    def format_line(self) -> str:
        if not self.added and not self.duplicates:
            return f"{self.path}: {self.format}, nothing ingestable"
        parts = [
            f"{table}+{count}" for table, count in sorted(self.added.items())
        ]
        dup = self.total_duplicates
        tail = f" ({dup} duplicate rows ignored)" if dup else ""
        return (
            f"{self.path}: {self.format}, "
            f"{', '.join(parts) if parts else 'no new rows'}{tail}"
        )


def _canonical(record) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _content_hash(table: str, record) -> str:
    digest = hashlib.sha256()
    digest.update(table.encode())
    digest.update(b"\x00")
    digest.update(_canonical(record).encode())
    return digest.hexdigest()


def _key_fields(run_key: Optional[str]) -> dict:
    """Architecture/scheme/size recovered from a GridTask key, if JSON."""
    if not isinstance(run_key, str):
        return {}
    try:
        parsed = json.loads(run_key)
    except json.JSONDecodeError:
        return {}
    return parsed if isinstance(parsed, dict) else {}


class Warehouse:
    """A sqlite results warehouse over every repo artifact format."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.conn = sqlite3.connect(str(self.path))
        self.conn.executescript(_SCHEMA)
        self._migrate()
        self.conn.commit()

    def _migrate(self) -> None:
        """Bring a pre-existing database up to the current schema.

        ``CREATE TABLE IF NOT EXISTS`` leaves old tables untouched, so
        columns added later (the provisioning pair) are bolted on here;
        existing rows read back NULL for them, which every consumer
        treats as "uniform sizing".
        """
        existing = {
            row[1] for row in self.conn.execute("PRAGMA table_info(points)")
        }
        for column in ("provision_profile", "provision_multipliers"):
            if column not in existing:
                self.conn.execute(
                    f"ALTER TABLE points ADD COLUMN {column} TEXT"
                )

    def close(self) -> None:
        self.conn.close()

    def __enter__(self) -> "Warehouse":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- ingestion -----------------------------------------------------------

    def ingest(self, path: str | Path) -> IngestResult:
        """Ingest one artifact file, auto-detecting its format.

        Understands: sweep results JSON, run-record sidecars, checkpoint
        JSONL, ``BENCH_sim.json`` / ``BENCH_serve.json``, loadgen report
        JSON, cluster state snapshots, JSONL event traces (span events),
        and Prometheus text scrapes.  Raises ``ValueError`` for a file
        that matches none of them.
        """
        path = Path(path)
        text = path.read_text()
        source = str(path)
        document = None
        try:
            document = json.loads(text)
        except json.JSONDecodeError:
            pass
        if isinstance(document, dict):
            result = self._ingest_document(document, source)
        elif document is None:
            result = self._ingest_lines(text, source)
        else:
            raise ValueError(f"{path}: JSON artifact is not an object")
        if result is None:
            raise ValueError(f"{path}: unrecognized artifact format")
        self.conn.commit()
        return result

    def _ingest_document(
        self, document: dict, source: str
    ) -> Optional[IngestResult]:
        if "points" in document and isinstance(document["points"], list):
            result = IngestResult(source, "results JSON")
            for raw in document["points"]:
                self._add_point(result, raw, source)
            return result
        if "records" in document and isinstance(document["records"], list):
            result = IngestResult(source, "run records")
            for raw in document["records"]:
                self._add_run_record(result, raw, source)
            return result
        if "runs" in document and "trace_build" in document:
            result = IngestResult(source, "BENCH_sim baseline")
            self._add_bench_sim(result, document, source, quick=False)
            return result
        if "levels" in document and "saturation" in document:
            result = IngestResult(source, "BENCH_serve baseline")
            self._add_bench_serve(result, document, source, quick=False)
            return result
        if "modelled" in document and "mode" in document:
            result = IngestResult(source, "loadgen report")
            self._add_load_report(result, document, source)
            return result
        if "nodes" in document and "scheme" in document:
            result = IngestResult(source, "cluster snapshot")
            self._add_snapshot(result, document, source)
            return result
        return None

    def _ingest_lines(self, text: str, source: str) -> Optional[IngestResult]:
        lines = []
        saw_json = False
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(raw, dict):
                saw_json = True
                lines.append(raw)
        if saw_json:
            if any("key" in raw and "point" in raw for raw in lines):
                result = IngestResult(source, "checkpoint JSONL")
                for raw in lines:
                    self._add_checkpoint_line(result, raw, source)
                return result
            if any("kind" in raw for raw in lines):
                result = IngestResult(source, "event trace")
                for raw in lines:
                    if raw.get("kind") == "span":
                        self._add_span(result, raw, source)
                return result
            return None
        # Not JSON at all: a Prometheus text scrape?
        from repro.obs.export import parse_prometheus_text

        samples = list(parse_prometheus_text(text))
        if not samples:
            return None
        result = IngestResult(source, "prometheus scrape")
        for metric, labels, value in samples:
            self.add_metrics_sample(
                result, metric, labels.get("node"), value, None, source
            )
        return result

    def _insert(
        self,
        result: IngestResult,
        table: str,
        columns: Sequence[str],
        values: Sequence,
        record,
    ) -> None:
        content_hash = _content_hash(table, record)
        placeholders = ", ".join("?" for _ in range(len(columns) + 1))
        quoted = ", ".join(f'"{c}"' for c in list(columns) + ["content_hash"])
        cursor = self.conn.execute(
            f"INSERT OR IGNORE INTO {table} ({quoted}) "
            f"VALUES ({placeholders})",
            list(values) + [content_hash],
        )
        bucket = result.added if cursor.rowcount else result.duplicates
        bucket[table] = bucket.get(table, 0) + 1

    def _add_point(
        self, result: IngestResult, raw: dict, source: str, key: str = None
    ) -> None:
        summary = raw.get("summary", {})
        percentiles = summary.get("latency_percentiles") or (None, None, None)
        provision = raw.get("provision")
        provision_profile = None
        provision_multipliers = None
        if isinstance(provision, dict):
            provision_profile = provision.get("profile")
            multipliers = provision.get("level_multipliers")
            if multipliers is not None:
                provision_multipliers = _canonical(multipliers)
        identity = {"point": raw}
        if key is not None:
            identity["key"] = key
        self._insert(
            result,
            "points",
            (
                "architecture",
                "scheme",
                "relative_cache_size",
                "requests",
                "hit_ratio",
                "byte_hit_ratio",
                "mean_latency",
                "mean_response_ratio",
                "mean_traffic_byte_hops",
                "mean_hops",
                "mean_read_load",
                "mean_write_load",
                "latency_p50",
                "latency_p90",
                "latency_p99",
                "provision_profile",
                "provision_multipliers",
                "source",
            ),
            (
                raw.get("architecture"),
                raw.get("scheme"),
                raw.get("relative_cache_size"),
                summary.get("requests"),
                summary.get("hit_ratio"),
                summary.get("byte_hit_ratio"),
                summary.get("mean_latency"),
                summary.get("mean_response_ratio"),
                summary.get("mean_traffic_byte_hops"),
                summary.get("mean_hops"),
                summary.get("mean_read_load"),
                summary.get("mean_write_load"),
                percentiles[0],
                percentiles[1],
                percentiles[2],
                provision_profile,
                provision_multipliers,
                source,
            ),
            identity["point"],
        )
        coherency = raw.get("coherency")
        if isinstance(coherency, dict):
            requests = summary.get("requests")
            hit_ratio = summary.get("hit_ratio")
            origin_load = (
                requests * (1.0 - hit_ratio)
                if requests is not None and hit_ratio is not None
                else None
            )
            self._add_coherency(
                result,
                coherency,
                architecture=raw.get("architecture"),
                scheme=raw.get("scheme"),
                context="sim",
                origin_load=origin_load,
                source=source,
                identity={"coherency_of": identity},
            )

    def _add_coherency(
        self,
        result: IngestResult,
        stats: dict,
        architecture: Optional[str],
        scheme: Optional[str],
        context: str,
        origin_load: Optional[float],
        source: str,
        identity,
    ) -> None:
        """One coherency-accounting row (shared by every artifact family).

        ``context`` records which artifact carried the accounting --
        ``sim`` (a sweep point), ``loadgen`` (a load report) or
        ``snapshot`` (a cluster state snapshot) -- so the
        ``coherency-modes`` comparison can line up like with like.
        ``origin_load`` is requests that reached the origin: the cache
        relief an invalidation design gives up.
        """
        self._insert(
            result,
            "coherency",
            (
                "mode",
                "architecture",
                "scheme",
                "context",
                "events_published",
                "event_deliveries",
                "polls",
                "subscriptions",
                "catchups",
                "channel_bytes",
                "inv_frames",
                "inv_bytes",
                "protocol_bytes",
                "stale_hits",
                "stale_bytes",
                "copies_invalidated",
                "stale_copies_evicted",
                "staleness_p50",
                "staleness_p99",
                "origin_load",
                "source",
            ),
            (
                stats.get("mode"),
                architecture,
                scheme,
                context,
                stats.get("events_published"),
                stats.get("event_deliveries"),
                stats.get("polls"),
                stats.get("subscriptions"),
                stats.get("catchups"),
                stats.get("channel_bytes"),
                stats.get("inv_frames"),
                stats.get("inv_bytes"),
                stats.get("protocol_bytes"),
                stats.get("stale_hits"),
                stats.get("stale_bytes"),
                stats.get("copies_invalidated"),
                stats.get("stale_copies_evicted"),
                stats.get("staleness_p50"),
                stats.get("staleness_p99"),
                origin_load,
                source,
            ),
            identity,
        )

    def _add_run_record(
        self, result: IngestResult, raw: dict, source: str
    ) -> None:
        run_key = raw.get("key")
        key_fields = _key_fields(run_key)
        architecture = key_fields.get("architecture")
        scheme = raw.get("scheme", key_fields.get("scheme"))
        violations = raw.get("audit_violations") or ()
        self._insert(
            result,
            "runs",
            (
                "run_key",
                "architecture",
                "scheme",
                "relative_cache_size",
                "duration_seconds",
                "requests",
                "requests_per_second",
                "worker",
                "reused",
                "audit_checks",
                "audit_violations",
                "source",
            ),
            (
                run_key,
                architecture,
                scheme,
                raw.get("relative_cache_size"),
                raw.get("duration_seconds"),
                raw.get("requests"),
                raw.get("requests_per_second"),
                raw.get("worker"),
                1 if raw.get("reused") else 0,
                raw.get("audit_checks"),
                len(violations),
                source,
            ),
            raw,
        )
        for violation in violations:
            if not isinstance(violation, dict):
                continue
            self._insert(
                result,
                "audit_violations",
                ("run_key", "scheme", "check", "detail", "request_index",
                 "source"),
                (
                    run_key,
                    scheme,
                    violation.get("check"),
                    violation.get("detail"),
                    violation.get("request_index"),
                    source,
                ),
                {"key": run_key, "violation": violation},
            )
        node_stats = raw.get("node_stats")
        if isinstance(node_stats, dict):
            for node, counters in node_stats.items():
                if not isinstance(counters, dict):
                    continue
                self._add_node_stats(
                    result, run_key, architecture, scheme, node, counters,
                    source,
                )

    def _add_node_stats(
        self,
        result: IngestResult,
        run_key: Optional[str],
        architecture: Optional[str],
        scheme: Optional[str],
        node,
        counters: dict,
        source: str,
    ) -> None:
        self._insert(
            result,
            "node_stats",
            ("run_key", "architecture", "scheme", "node") + _NODE_COUNTERS
            + ("source",),
            (run_key, architecture, scheme, str(node))
            + tuple(counters.get(name, 0) for name in _NODE_COUNTERS)
            + (source,),
            {"key": run_key, "node": str(node), "stats": counters},
        )

    def _add_checkpoint_line(
        self, result: IngestResult, raw: dict, source: str
    ) -> None:
        key = raw.get("key")
        point = raw.get("point")
        if isinstance(point, dict):
            self._add_point(result, point, source, key=key)
        record = raw.get("record")
        if isinstance(record, dict) and record:
            record = dict(record)
            record.setdefault("key", key)
            self._add_run_record(result, record, source)

    def _add_bench_sim(
        self, result: IngestResult, document: dict, source: str, quick: bool
    ) -> None:
        preset = document.get("preset")
        for case_name, case in sorted(
            (document.get("runs") or {}).items()
        ):
            if not isinstance(case, dict):
                continue
            self._insert(
                result,
                "bench_sim",
                ("preset", "quick", "case_name", "reference_rps", "fast_rps",
                 "speedup", "source"),
                (
                    preset,
                    1 if quick else 0,
                    case_name,
                    case.get("reference_rps"),
                    case.get("fast_rps"),
                    case.get("speedup"),
                    source,
                ),
                {"preset": preset, "quick": quick, "case": case_name,
                 "run": case},
            )
        nested = document.get("quick")
        if isinstance(nested, dict) and not quick:
            self._add_bench_sim(result, nested, source, quick=True)

    def _add_bench_serve(
        self, result: IngestResult, document: dict, source: str, quick: bool
    ) -> None:
        preset = document.get("preset")
        scheme = document.get("scheme")
        arch = document.get("arch")
        shards = document.get("shards")
        for level in document.get("levels") or ():
            if not isinstance(level, dict):
                continue
            self._insert(
                result,
                "bench_serve_levels",
                ("preset", "quick", "scheme", "arch", "shards",
                 "offered_rps", "offered_requests", "completed",
                 "achieved_rps", "achieved_ratio", "errors", "rejected",
                 "shed", "busy_retries", "wall_p50", "wall_p90", "wall_p99",
                 "source"),
                (
                    preset, 1 if quick else 0, scheme, arch, shards,
                    level.get("offered_rps"),
                    level.get("offered_requests"),
                    level.get("completed"),
                    level.get("achieved_rps"),
                    level.get("achieved_ratio"),
                    level.get("errors"),
                    level.get("rejected"),
                    level.get("shed"),
                    level.get("busy_retries"),
                    level.get("wall_p50"),
                    level.get("wall_p90"),
                    level.get("wall_p99"),
                    source,
                ),
                {"preset": preset, "quick": quick, "scheme": scheme,
                 "arch": arch, "level": level},
            )
        saturation = document.get("saturation")
        if isinstance(saturation, dict):
            self._insert(
                result,
                "bench_serve_saturation",
                ("preset", "quick", "scheme", "arch", "offered_rps",
                 "achieved_rps", "wall_p99", "source"),
                (
                    preset, 1 if quick else 0, scheme, arch,
                    saturation.get("offered_rps"),
                    saturation.get("achieved_rps"),
                    saturation.get("wall_p99"),
                    source,
                ),
                {"preset": preset, "quick": quick, "scheme": scheme,
                 "arch": arch, "saturation": saturation},
            )
        nested = document.get("quick")
        if isinstance(nested, dict) and not quick:
            self._add_bench_serve(result, nested, source, quick=True)

    def _add_load_report(
        self, result: IngestResult, document: dict, source: str
    ) -> None:
        modelled = document.get("modelled") or {}
        self._insert(
            result,
            "load_reports",
            ("mode", "requests_total", "requests_measured", "cache_served",
             "origin_served", "duration_seconds", "requests_per_second",
             "wall_latency_mean", "wall_latency_p50", "wall_latency_p90",
             "wall_latency_p99", "updates_applied", "copies_invalidated",
             "errors", "rejected", "shed", "busy_retries", "aborted",
             "hit_ratio", "byte_hit_ratio", "mean_latency", "mean_hops",
             "source"),
            (
                document.get("mode"),
                document.get("requests_total"),
                document.get("requests_measured"),
                document.get("cache_served"),
                document.get("origin_served"),
                document.get("duration_seconds"),
                document.get("requests_per_second"),
                document.get("wall_latency_mean"),
                document.get("wall_latency_p50"),
                document.get("wall_latency_p90"),
                document.get("wall_latency_p99"),
                document.get("updates_applied"),
                document.get("copies_invalidated"),
                document.get("errors"),
                document.get("rejected"),
                document.get("shed"),
                document.get("busy_retries"),
                1 if document.get("aborted") else 0,
                modelled.get("hit_ratio"),
                modelled.get("byte_hit_ratio"),
                modelled.get("mean_latency"),
                modelled.get("mean_hops"),
                source,
            ),
            document,
        )
        coherency = document.get("coherency")
        if isinstance(coherency, dict):
            self._add_coherency(
                result,
                coherency,
                architecture=document.get("arch"),
                scheme=document.get("scheme"),
                context="loadgen",
                origin_load=document.get("origin_served"),
                source=source,
                identity={"coherency_of": document},
            )

    def _add_snapshot(
        self, result: IngestResult, document: dict, source: str
    ) -> None:
        scheme = document.get("scheme")
        architecture = document.get("architecture")
        for node, payload in sorted((document.get("nodes") or {}).items()):
            if not isinstance(payload, dict):
                continue
            counters = payload.get("stats")
            if not isinstance(counters, dict):
                continue
            self._add_node_stats(
                result, None, architecture, scheme, node, counters, source
            )
        coherency = document.get("coherency")
        if isinstance(coherency, dict):
            self._add_coherency(
                result,
                coherency,
                architecture=architecture,
                scheme=scheme,
                context="snapshot",
                origin_load=None,
                source=source,
                identity={
                    "coherency_of": {
                        "scheme": scheme,
                        "architecture": architecture,
                        "coherency": coherency,
                    }
                },
            )

    def _add_span(
        self, result: IngestResult, raw: dict, source: str
    ) -> None:
        self._insert(
            result,
            "spans",
            ("trace_id", "span_id", "parent_id", "node", "shard", "op",
             "status", "path_index", "hit_index", "object_id", "size",
             "trace_time", "start", "wall", "upstream", "lookup", "decide",
             "deliver", "retries", "failovers", "piggyback_bytes",
             "crossed_shard", "inflight", "source"),
            (
                raw.get("trace"),
                raw.get("span"),
                raw.get("parent"),
                raw.get("node"),
                raw.get("shard"),
                raw.get("op"),
                raw.get("status"),
                raw.get("index"),
                raw.get("hit_index"),
                raw.get("object"),
                raw.get("size"),
                raw.get("t"),
                raw.get("start"),
                raw.get("wall"),
                raw.get("upstream"),
                raw.get("lookup"),
                raw.get("decide"),
                raw.get("deliver"),
                raw.get("retries", 0),
                raw.get("failovers", 0),
                raw.get("piggyback", 0),
                1 if raw.get("xshard") else 0,
                raw.get("inflight"),
                source,
            ),
            raw,
        )

    def add_metrics_sample(
        self,
        result: Optional[IngestResult],
        metric: str,
        node: Optional[str],
        value: float,
        scraped_at: Optional[float],
        source: str,
    ) -> None:
        """One timeseries row (scrape-file ingest and the live poller)."""
        if result is None:
            result = IngestResult(source, "metrics")
        self._insert(
            result,
            "metrics_samples",
            ("scraped_at", "metric", "node", "value", "source"),
            (scraped_at, metric, node, value, source),
            {"at": scraped_at, "metric": metric, "node": node,
             "value": value, "source": source},
        )

    # -- queries -------------------------------------------------------------

    def query(self, name: str) -> Tuple[List[str], List[tuple]]:
        """Run one canned query; returns (headers, rows)."""
        canned = CANNED_QUERIES.get(name)
        if canned is None:
            raise KeyError(
                f"unknown canned query {name!r} "
                f"(available: {', '.join(sorted(CANNED_QUERIES))})"
            )
        return self.sql(canned.sql)

    def sql(self, statement: str) -> Tuple[List[str], List[tuple]]:
        """Run a free-form (read) SQL statement; returns (headers, rows)."""
        cursor = self.conn.execute(statement)
        headers = [column[0] for column in cursor.description or ()]
        return headers, cursor.fetchall()

    def table_counts(self) -> Dict[str, int]:
        tables = [
            row[0]
            for row in self.conn.execute(
                "SELECT name FROM sqlite_master WHERE type='table' "
                "AND name NOT LIKE 'sqlite_%' ORDER BY name"
            )
        ]
        return {
            table: self.conn.execute(
                f'SELECT COUNT(*) FROM "{table}"'
            ).fetchone()[0]
            for table in tables
        }

    def report(self) -> str:
        """Overview: table row counts plus every non-empty canned query."""
        counts = self.table_counts()
        lines = [f"warehouse: {self.path}"]
        for table, count in counts.items():
            lines.append(f"  {table:<24} {count} rows")
        for name in sorted(CANNED_QUERIES):
            headers, rows = self.query(name)
            if not rows:
                continue
            lines.append("")
            lines.append(f"-- {name}: {CANNED_QUERIES[name].description}")
            lines.append(format_table(headers, rows))
        return "\n".join(lines)


# -- rendering ---------------------------------------------------------------


def _cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[tuple]) -> str:
    """Right-aligned text table of a query result."""
    rendered = [[_cell(v) for v in row] for row in rows]
    if not rendered:
        return "(no rows)"
    widths = [
        max(len(header), *(len(row[i]) for row in rendered)) + 2
        for i, header in enumerate(headers)
    ]
    lines = ["".join(h.rjust(w) for h, w in zip(headers, widths))]
    for row in rendered:
        lines.append("".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def write_csv(headers: Sequence[str], rows: Iterable[tuple]) -> str:
    """A query result as CSV text (header row included)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


# -- the /metrics poller -----------------------------------------------------


def poll_metrics(
    warehouse: Warehouse,
    manifest: dict,
    scraped_at: float,
    timeout: float = 10.0,
) -> int:
    """Scrape every ``/metrics`` endpoint of a serve manifest once.

    Lands one ``metrics_samples`` row per (metric, node) sample, stamped
    ``scraped_at``, keyed by the manifest's advertised endpoints; returns
    the number of rows added.  Unreachable endpoints are skipped (the
    poller outlives individual node restarts).
    """
    import urllib.request

    from repro.obs.export import parse_prometheus_text

    result = IngestResult("poll", "metrics poll")
    endpoints = manifest.get("metrics") or {}
    for node, address in sorted(endpoints.items()):
        host, port = address
        url = f"http://{host}:{port}/metrics"
        try:
            body = urllib.request.urlopen(url, timeout=timeout).read()
        except OSError:
            continue
        for metric, labels, value in parse_prometheus_text(
            body.decode("utf-8", "replace")
        ):
            warehouse.add_metrics_sample(
                result,
                metric,
                labels.get("node", str(node)),
                value,
                scraped_at,
                url,
            )
    warehouse.conn.commit()
    return result.total_added
