#!/usr/bin/env python3
"""Reproduce every table and figure of the paper in one run.

Drives the full evaluation -- Table 1, the Figure 6-8 en-route sweep, the
Figure 9-10 hierarchical sweep and the MODULO radius ablation -- and
writes, into an output directory:

* ``table1.txt``, ``fig6_8_enroute.txt``, ``fig9_10_hierarchical.txt``,
  ``modulo_radius.txt`` -- the formatted tables;
* ``enroute_points.json`` / ``hierarchical_points.json`` -- raw sweep
  points for later ``cascade-repro compare`` regression checks;
* ``charts.txt`` -- ASCII renderings of the headline figure panels.

Each sweep streams its finished points to ``<out>/<name>_checkpoint.jsonl``;
re-running with ``--resume`` after an interruption re-executes only the
missing grid points.  Per-point run records (duration, throughput, worker
id) land in ``<out>/<name>_run_records.json``.

Usage:
    python scripts/reproduce.py --out results [--scale standard]
        [--seed 1] [--workers 4] [--resume] [--progress]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments.presets import (
    DEFAULT_CACHE_SIZES,
    SMALL_SCALE,
    STANDARD_SCALE,
    build_architecture,
)
from repro.experiments.charts import render_figure
from repro.experiments.results_io import save_points_json, save_run_records
from repro.experiments.sweeps import run_cache_size_sweep, run_modulo_radius_sweep
from repro.experiments.tables import (
    format_sweep_table,
    format_table1,
    topology_characteristics,
)

_SCALES = {"small": SMALL_SCALE, "standard": STANDARD_SCALE}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="results", help="output directory")
    parser.add_argument("--scale", choices=sorted(_SCALES), default="small")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip sweep points already in the output checkpoints",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print one line per finished sweep point",
    )
    args = parser.parse_args()

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    preset = _SCALES[args.scale].with_seed(args.seed)
    generator = preset.generator()
    print(f"generating {preset.workload.num_requests}-request trace "
          f"({args.scale} scale, seed {args.seed}) ...")
    trace = generator.generate()
    catalog = generator.catalog

    # Table 1.
    enroute = build_architecture("en-route", preset.workload, seed=args.seed)
    table1 = (
        "Table 1: System Parameters for En-Route Architecture\n"
        + format_table1(topology_characteristics(enroute))
    )
    (out / "table1.txt").write_text(table1 + "\n")
    print(table1)

    charts: list[str] = []
    for arch_name, filename in (
        ("en-route", "fig6_8_enroute"),
        ("hierarchical", "fig9_10_hierarchical"),
    ):
        architecture = (
            enroute
            if arch_name == "en-route"
            else build_architecture(arch_name, preset.workload, seed=args.seed)
        )
        start = time.time()
        print(f"\nrunning {arch_name} sweep ...", flush=True)
        records: list = []

        def on_progress(event) -> None:
            records.append(event.record)
            if args.progress:
                print(f"  {event.format()}", flush=True)

        points = run_cache_size_sweep(
            architecture,
            trace,
            catalog,
            scheme_names=("lru", "modulo", "lnc-r", "coordinated"),
            cache_sizes=DEFAULT_CACHE_SIZES,
            scheme_params={"modulo": {"radius": 4}},
            workers=args.workers,
            checkpoint_path=out / f"{filename}_checkpoint.jsonl",
            resume=args.resume,
            progress=on_progress,
        )
        elapsed = time.time() - start
        save_run_records(records, out / f"{filename}_run_records.json")
        reused = sum(1 for r in records if r.reused)
        if reused:
            print(f"  ({reused} of {len(records)} points reused from checkpoint)")
        text = format_sweep_table(
            points,
            [
                "latency",
                "response_ratio",
                "byte_hit_ratio",
                "traffic",
                "hops",
                "cache_load",
            ],
            title=f"{arch_name} sweep ({elapsed:.0f}s)",
        )
        (out / f"{filename}.txt").write_text(text + "\n")
        save_points_json(points, out / f"{arch_name.replace('-', '')}_points.json")
        print(text)
        charts.append(render_figure(
            points, "latency", title=f"{arch_name}: mean latency vs cache size"
        ))

    (out / "charts.txt").write_text("\n\n".join(charts) + "\n")

    radius_texts = []
    for arch_name in ("en-route", "hierarchical"):
        architecture = build_architecture(
            arch_name, preset.workload, seed=args.seed
        )
        points = run_modulo_radius_sweep(
            architecture, trace, catalog, radii=(1, 2, 3, 4, 5, 6),
            relative_cache_size=0.03,
            workers=args.workers,
            checkpoint_path=out / f"radius_{arch_name}_checkpoint.jsonl",
            resume=args.resume,
        )
        radius_texts.append(format_sweep_table(
            points,
            ["latency", "byte_hit_ratio", "cache_load"],
            title=f"MODULO radius ablation, {arch_name}, 3% cache",
        ))
    (out / "modulo_radius.txt").write_text("\n\n".join(radius_texts) + "\n")
    print("\n" + "\n\n".join(radius_texts))

    print(f"\nall artifacts written to {out}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
