#!/usr/bin/env sh
# CI smoke job: lint (when ruff is available) + the tier-1 test command.
#
# Usage: sh scripts/ci_smoke.sh
#
# The ruff configuration lives in pyproject.toml ([tool.ruff]); install
# it with `pip install -e .[lint]`.  Environments without ruff (e.g. the
# hermetic reproduction container) skip the lint step with a notice and
# still gate on the tier-1 pytest run.
set -eu

cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests scripts benchmarks
else
    echo "== ruff not installed; skipping lint (pip install -e .[lint]) =="
fi

echo "== tier-1 tests =="
# With pytest-cov available the run doubles as the coverage gate
# (`pip install -e .[lint]`); hermetic containers without it still gate
# on the plain tier-1 pytest run.
if python -c "import pytest_cov" >/dev/null 2>&1; then
    COV_FLAGS="--cov=repro --cov-fail-under=80"
else
    echo "== pytest-cov not installed; skipping coverage gate =="
    COV_FLAGS=""
fi
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q $COV_FLAGS

echo "== audited simulation smoke =="
# Every shipped scheme under the full correctness audit layer (runtime
# invariants, differential oracles, shadow replay); exits non-zero on
# any violation.
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro sim --audit \
    --scale small --schemes lru,lnc-r,coordinated,adaptive,costaware

echo "== instrumented simulation smoke =="
# One coordinated run with the full observability layer on: JSONL event
# trace, per-node stat table, phase timers, windowed time series -- then
# the trace subcommand summarizing what the run wrote.
OBS_DIR=$(mktemp -d)
trap 'rm -rf "$OBS_DIR"' EXIT
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro sim \
    --scale small --schemes coordinated --size 0.01 \
    --trace-out "$OBS_DIR/run.jsonl" --node-stats --timers \
    --snapshot-every 5000 --timeseries-window 60 \
    --timeseries-out "$OBS_DIR/series.csv"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro trace \
    "$OBS_DIR/run.jsonl"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro trace \
    "$OBS_DIR/run.jsonl" --kinds placement --events --limit 3

echo "== approximate-placement family sweep (adaptive + costaware) =="
# The greedy and single-copy placement schemes through the full
# pipeline: an *audited* provisioned mini-sweep (uniform vs. edge-heavy
# capacity profiles; the command exits non-zero on any audit violation,
# while the placement oracle reports the adaptive-vs-DP gap as a note),
# then ingestion into a temporary warehouse where both new schemes must
# come back out of the scheme-arch and provisioning canned queries.
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro sweep \
    --arch hierarchical --schemes coordinated,adaptive,costaware \
    --sizes 0.02 --scale small --provision --profiles uniform,edge-heavy \
    --audit --metrics latency,byte_hit_ratio \
    --save "$OBS_DIR/family.json"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro warehouse \
    --db "$OBS_DIR/family.sqlite" ingest \
    "$OBS_DIR/family.json" "$OBS_DIR/family.json.records.json"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python - \
    "$OBS_DIR/family.sqlite" <<'EOF'
import sys

from repro.obs.warehouse import Warehouse

with Warehouse(sys.argv[1]) as warehouse:
    headers, rows = warehouse.query("scheme-arch")
    schemes = {row[headers.index("scheme")] for row in rows}
    assert {"coordinated", "adaptive", "costaware"} <= schemes, schemes
    headers, rows = warehouse.query("provisioning")
    assert len(rows) == 6, rows  # 3 schemes x 2 capacity profiles
    profiles = {row[headers.index("profile")] for row in rows}
    assert profiles == {"uniform", "edge-heavy"}, profiles
print("approximate-placement sweep: both new schemes present in "
      "scheme-arch, all 6 provisioning rows accounted for")
EOF

echo "== disabled-instrumentation overhead gate =="
# The obs layer's zero-overhead-when-off contract: a disabled bundle
# must stay within 5% of plain engine throughput (interleaved min-of-N).
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -q \
    benchmarks/test_micro_probe_overhead.py

echo "== fast-path micro speedup gate =="
# The columnar kernels must stay recognizably faster than the reference
# loop (conservative 2x floor; catches eligibility-check regressions
# that silently reroute everything through the generic loop).
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -q \
    benchmarks/test_micro_fastpath.py

echo "== columnar fast-path throughput gate =="
# The quick benchmark preset, checked against the committed
# BENCH_sim.json baseline: the bit-exactness assertion runs inside the
# benchmark (fast summary == reference summary per run), and the
# speedup *ratio* -- fast vs reference measured back to back in one
# process, so machine speed cancels -- must stay within 20% of the
# baseline's embedded quick-preset ratios.
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python scripts/bench_sim.py \
    --quick --check

echo "== live serve/loadgen smoke (loopback TCP) =="
# End to end through the serving layer: background `repro serve`, drive
# part of the trace over real sockets with `repro loadgen`, scrape the
# per-node /metrics endpoints and require the request counter to have
# moved, then SIGTERM the server for the graceful drain-and-snapshot
# path.  SIGTERM, not SIGINT: POSIX shells start background jobs with
# SIGINT ignored.  Every step is bounded by `timeout` when available.
SERVE_DIR=$(mktemp -d)
SERVE_PID=""
cleanup() {
    if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
        kill -TERM "$SERVE_PID" 2>/dev/null || true
        wait "$SERVE_PID" 2>/dev/null || true
    fi
    rm -rf "$OBS_DIR" "$SERVE_DIR"
}
trap cleanup EXIT
if command -v timeout >/dev/null 2>&1; then
    BOUND="timeout 180"
else
    BOUND=""
fi
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} $BOUND python -m repro serve \
    --scheme coordinated --arch hierarchical --scale small \
    --manifest "$SERVE_DIR/cluster.json" \
    --snapshot "$SERVE_DIR/snapshot.json" &
SERVE_PID=$!
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} $BOUND python -m repro loadgen \
    --manifest "$SERVE_DIR/cluster.json" --mode closed --concurrency 4 \
    --requests 2000 --wait 60 --json "$SERVE_DIR/report.json"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} $BOUND python - \
    "$SERVE_DIR/cluster.json" <<'EOF'
import json, sys, urllib.request

manifest = json.load(open(sys.argv[1]))
handled = 0
for node, (host, port) in sorted(manifest["metrics"].items()):
    body = urllib.request.urlopen(
        f"http://{host}:{port}/metrics", timeout=10
    ).read().decode()
    for line in body.splitlines():
        if line.startswith("repro_node_requests_handled_total{"):
            handled += int(float(line.rsplit(" ", 1)[1]))
print(f"/metrics across {len(manifest['metrics'])} nodes: "
      f"{handled} request walks handled")
assert handled >= 2000, f"request counter did not move: {handled}"
EOF
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || true
SERVE_PID=""
test -s "$SERVE_DIR/snapshot.json"
echo "graceful SIGTERM shutdown wrote $SERVE_DIR/snapshot.json"

echo "== chaos smoke (fault-injected serve + loadgen) =="
# The same serve/loadgen pair under the example fault plan: frame drops,
# delays, duplicates, corruption, one node crash-and-restart and one
# slow-down (the plan targets the small hierarchical topology at seed 0).
# The run must complete with zero client-visible errors -- the resilience
# layer (deadlines, retries, breakers, failover) absorbs every fault --
# and the retry counters scraped from /metrics must have moved.
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} $BOUND python -m repro serve \
    --scheme coordinated --arch hierarchical --scale small \
    --fault-plan examples/fault_plan.json \
    --rpc-timeout 5 --retry-attempts 4 \
    --manifest "$SERVE_DIR/chaos.json" &
SERVE_PID=$!
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} $BOUND python -m repro loadgen \
    --manifest "$SERVE_DIR/chaos.json" --mode closed --concurrency 4 \
    --requests 2000 --wait 60 --json "$SERVE_DIR/chaos_report.json"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} $BOUND python - \
    "$SERVE_DIR/chaos.json" "$SERVE_DIR/chaos_report.json" <<'EOF'
import json, sys, urllib.request

report = json.load(open(sys.argv[2]))
assert report["errors"] == 0, f"client-visible errors: {report['errors']}"
assert report["cache_served"] + report["origin_served"] == 2000
manifest = json.load(open(sys.argv[1]))
survived = {"rpc_retries_total": 0, "failovers_total": 0,
            "rpc_timeouts_total": 0, "breaker_trips_total": 0}
for node, (host, port) in sorted(manifest["metrics"].items()):
    body = urllib.request.urlopen(
        f"http://{host}:{port}/metrics", timeout=10
    ).read().decode()
    for line in body.splitlines():
        for key in survived:
            if line.startswith(f"repro_cache_{key}{{"):
                survived[key] += int(float(line.rsplit(" ", 1)[1]))
print("resilience counters:",
      ", ".join(f"{k}={v}" for k, v in sorted(survived.items())))
assert survived["rpc_retries_total"] > 0, "fault plan exercised nothing"
EOF
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || true
SERVE_PID=""
echo "chaos smoke survived the fault plan with zero client-visible errors"

echo "== sharded serve smoke (two worker processes, open-loop load) =="
# The cluster split across two shard worker processes, driven open-loop
# (requests fire at retimed trace timestamps regardless of completions).
# Gates: zero client-visible errors AND zero rejections -- at this
# offered rate the cluster must absorb everything -- plus nonzero
# cross-shard forward counters in the drain snapshot, proving walks
# really crossed the process boundary.
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} $BOUND python -m repro serve \
    --scheme coordinated --arch hierarchical --scale small \
    --shards 2 --no-metrics \
    --manifest "$SERVE_DIR/sharded.json" \
    --snapshot "$SERVE_DIR/sharded_snapshot.json" &
SERVE_PID=$!
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} $BOUND python -m repro loadgen \
    --manifest "$SERVE_DIR/sharded.json" --mode open --speedup 300 \
    --requests 1500 --wait 60 --json "$SERVE_DIR/sharded_report.json"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || true
SERVE_PID=""
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} $BOUND python - \
    "$SERVE_DIR/sharded_report.json" "$SERVE_DIR/sharded_snapshot.json" <<'EOF'
import json, sys

report = json.load(open(sys.argv[1]))
assert report["errors"] == 0, f"client-visible errors: {report['errors']}"
assert report["rejected"] == 0, f"rejected requests: {report['rejected']}"
snapshot = json.load(open(sys.argv[2]))
assert snapshot["num_shards"] == 2, snapshot["num_shards"]
xfwd = sum(
    node["stats"].get("cross_shard_fwds", 0)
    for node in snapshot["nodes"].values()
)
assert xfwd > 0, "no walk crossed the shard boundary"
print(f"open-loop sharded smoke: {report['requests_total']} requests, "
      f"0 errors, {xfwd} cross-shard forwards")
EOF

echo "== observability smoke (traced shards + results warehouse) =="
# The PR-8 pipeline end to end: a short traced two-shard cluster writes
# per-shard span files; a one-point sweep leaves results + run-record
# sidecars; the loadgen report and a /metrics scrape land next to them;
# everything is ingested into one temporary sqlite warehouse.  Gates:
# the scheme-arch canned query returns exactly the sweep's row count,
# re-ingesting an artifact adds zero rows, and the spans reconstruct
# into a request tree covering both shard processes.
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro sweep \
    --arch hierarchical --schemes lru --sizes 0.05 --scale small \
    --metrics latency --node-stats --save "$SERVE_DIR/points.json"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} $BOUND python -m repro serve \
    --scheme coordinated --arch hierarchical --scale small \
    --shards 2 --trace-out "$SERVE_DIR/spans.jsonl" \
    --manifest "$SERVE_DIR/traced.json" &
SERVE_PID=$!
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} $BOUND python -m repro loadgen \
    --manifest "$SERVE_DIR/traced.json" --mode closed --concurrency 4 \
    --requests 1000 --wait 60 --report-out "$SERVE_DIR/traced_report.json"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} $BOUND python - \
    "$SERVE_DIR/traced.json" "$SERVE_DIR/scrape.prom" <<'EOF'
import json, sys, urllib.request

manifest = json.load(open(sys.argv[1]))
with open(sys.argv[2], "w") as out:
    for node, (host, port) in sorted(manifest["metrics"].items()):
        out.write(urllib.request.urlopen(
            f"http://{host}:{port}/metrics", timeout=10
        ).read().decode())
print(f"scraped /metrics of {len(manifest['metrics'])} nodes")
EOF
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || true
SERVE_PID=""
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro warehouse \
    --db "$SERVE_DIR/warehouse.sqlite" ingest \
    "$SERVE_DIR/points.json" "$SERVE_DIR/points.json.records.json" \
    "$SERVE_DIR/traced_report.json" "$SERVE_DIR/scrape.prom" \
    "$SERVE_DIR"/spans.shard*.jsonl
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python - \
    "$SERVE_DIR/warehouse.sqlite" "$SERVE_DIR/points.json" \
    "$SERVE_DIR"/spans.shard*.jsonl <<'EOF'
import sys

from repro.obs import read_trace_events, reconstruct_traces
from repro.obs.warehouse import Warehouse

with Warehouse(sys.argv[1]) as warehouse:
    headers, rows = warehouse.query("scheme-arch")
    assert len(rows) == 1, f"expected the sweep's single point: {rows}"
    headers, rows = warehouse.query("loadgen")
    assert len(rows) == 1, rows
    headers, rows = warehouse.query("metrics-latest")
    assert rows, "no /metrics samples ingested"
    headers, rows = warehouse.query("trace-shards")
    shards = headers.index("shards")
    assert rows and max(row[shards] for row in rows) >= 2, rows
    before = warehouse.table_counts()
    assert warehouse.ingest(sys.argv[2]).total_added == 0
    assert warehouse.table_counts() == before, "re-ingest changed rows"
events = [e for path in sys.argv[3:] for e in read_trace_events(path)]
trees = reconstruct_traces(events)
cross = [t for t in trees.values() if len(t.shards()) >= 2]
assert cross, "no reconstructed trace covers both shard processes"
print(f"warehouse smoke: {len(trees)} traces reconstructed, "
      f"{len(cross)} crossing shards; idempotent re-ingest verified")
print(cross[0].format())
EOF

echo "== coherency comparison smoke (in-band vs. channel) =="
# The PR-9 axis end to end.  Two real sim runs (same workload, same
# update stream) produce the in-band and channel sides of the
# comparison; a live channel-mode cluster then runs under a fault plan
# that drops 40% of broker fan-out frames, so convergence must come
# from gap detection + catch-up replay.  Gates: the loadgen report
# shows drops AND catch-ups AND zero pending after the drain sync, the
# SIGTERM snapshot agrees, and the warehouse's coherency-modes query
# lines both modes up from the sim sweep and the live run.
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro sim \
    --arch hierarchical --schemes lru --scale small --size 0.05 \
    --coherency inband --update-rate 0.5 \
    --save "$SERVE_DIR/coh_inband.json"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro sim \
    --arch hierarchical --schemes lru --scale small --size 0.05 \
    --coherency channel --channel-poll-interval 20 --update-rate 0.5 \
    --save "$SERVE_DIR/coh_channel.json"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} $BOUND python -m repro serve \
    --scheme lru --arch hierarchical --scale small \
    --coherency channel --no-metrics \
    --fault-plan examples/broker_fault_plan.json \
    --manifest "$SERVE_DIR/channel.json" \
    --snapshot "$SERVE_DIR/channel_snapshot.json" &
SERVE_PID=$!
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} $BOUND python -m repro loadgen \
    --manifest "$SERVE_DIR/channel.json" --mode sequential \
    --update-rate 0.5 --requests 1500 --wait 60 \
    --report-out "$SERVE_DIR/channel_report.json"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || true
SERVE_PID=""
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} $BOUND python - \
    "$SERVE_DIR/channel_report.json" "$SERVE_DIR/channel_snapshot.json" <<'EOF'
import json, sys

report = json.load(open(sys.argv[1]))
coh = report["coherency"]
assert coh["mode"] == "channel", coh["mode"]
assert coh["event_drops"] > 0, "fault plan dropped no fan-out frames"
assert coh["node_catchups"] > 0, "drops recovered without any catchup?"
assert coh["pending"] == 0, f"drain sync left {coh['pending']} pending"
snapshot = json.load(open(sys.argv[2]))
snap_coh = snapshot["coherency"]
assert snap_coh["pending"] == 0, snap_coh["pending"]
assert snapshot["channel"]["broker"]["events_published"] > 0
print(f"channel smoke: {coh['events_published']} events, "
      f"{coh['event_drops']} dropped fan-outs recovered via "
      f"{coh['node_catchups']} catchups, 0 pending at drain")
EOF
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro warehouse \
    --db "$SERVE_DIR/coherency.sqlite" ingest \
    "$SERVE_DIR/coh_inband.json" "$SERVE_DIR/coh_channel.json" \
    "$SERVE_DIR/channel_report.json" "$SERVE_DIR/channel_snapshot.json"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro warehouse \
    --db "$SERVE_DIR/coherency.sqlite" query coherency-modes
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python - \
    "$SERVE_DIR/coherency.sqlite" <<'EOF'
import sys

from repro.obs.warehouse import Warehouse

with Warehouse(sys.argv[1]) as warehouse:
    headers, rows = warehouse.query("coherency-modes")
    modes = {row[headers.index("mode")] for row in rows}
    contexts = {row[headers.index("context")] for row in rows}
    assert modes == {"inband", "channel"}, modes
    assert {"sim", "loadgen", "snapshot"} <= contexts, contexts
    print(f"coherency-modes: {len(rows)} rows covering {sorted(modes)} "
          f"across {sorted(contexts)}")
EOF

echo "== serve saturation throughput gate =="
# The quick serving benchmark against the committed BENCH_serve.json
# baseline: a two-shard cluster driven open-loop at offered rates far
# below any machine's saturation knee.  The gate is the achieved/offered
# *ratio* at the lowest level (machine speed cancels: an unsaturated
# cluster achieves ~1.0 of offered anywhere) within 20% of baseline,
# plus zero client-visible errors at every level.
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python scripts/bench_serve.py \
    --quick --check
