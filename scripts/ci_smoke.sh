#!/usr/bin/env sh
# CI smoke job: lint (when ruff is available) + the tier-1 test command.
#
# Usage: sh scripts/ci_smoke.sh
#
# The ruff configuration lives in pyproject.toml ([tool.ruff]); install
# it with `pip install -e .[lint]`.  Environments without ruff (e.g. the
# hermetic reproduction container) skip the lint step with a notice and
# still gate on the tier-1 pytest run.
set -eu

cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests scripts benchmarks
else
    echo "== ruff not installed; skipping lint (pip install -e .[lint]) =="
fi

echo "== tier-1 tests =="
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q

echo "== audited simulation smoke =="
# Every shipped scheme under the full correctness audit layer (runtime
# invariants, differential oracles, shadow replay); exits non-zero on
# any violation.
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro sim --audit \
    --scale small --schemes lru,lnc-r,coordinated

echo "== instrumented simulation smoke =="
# One coordinated run with the full observability layer on: JSONL event
# trace, per-node stat table, phase timers, windowed time series -- then
# the trace subcommand summarizing what the run wrote.
OBS_DIR=$(mktemp -d)
trap 'rm -rf "$OBS_DIR"' EXIT
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro sim \
    --scale small --schemes coordinated --size 0.01 \
    --trace-out "$OBS_DIR/run.jsonl" --node-stats --timers \
    --snapshot-every 5000 --timeseries-window 60 \
    --timeseries-out "$OBS_DIR/series.csv"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro trace \
    "$OBS_DIR/run.jsonl"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro trace \
    "$OBS_DIR/run.jsonl" --kinds placement --events --limit 3

echo "== disabled-instrumentation overhead gate =="
# The obs layer's zero-overhead-when-off contract: a disabled bundle
# must stay within 5% of plain engine throughput (interleaved min-of-N).
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -q \
    benchmarks/test_micro_probe_overhead.py
