#!/usr/bin/env sh
# CI smoke job: lint (when ruff is available) + the tier-1 test command.
#
# Usage: sh scripts/ci_smoke.sh
#
# The ruff configuration lives in pyproject.toml ([tool.ruff]); install
# it with `pip install -e .[lint]`.  Environments without ruff (e.g. the
# hermetic reproduction container) skip the lint step with a notice and
# still gate on the tier-1 pytest run.
set -eu

cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests scripts benchmarks
else
    echo "== ruff not installed; skipping lint (pip install -e .[lint]) =="
fi

echo "== tier-1 tests =="
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q

echo "== audited simulation smoke =="
# Every shipped scheme under the full correctness audit layer (runtime
# invariants, differential oracles, shadow replay); exits non-zero on
# any violation.
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro sim --audit \
    --scale small --schemes lru,lnc-r,coordinated
