"""Dev harness: exhaustive fast-vs-reference differential sweep.

Thin runner over :mod:`repro.verify.fastpath_diff` covering every scheme
on both architectures and all three exact cost models, with an update
stream.  The tier-1 test `tests/test_sim_columnar.py` runs a smaller
version of the same sweep; this script is the long-form local gate to
run after touching the kernels in `repro.sim.fastpath`.
"""

import sys

sys.path.insert(0, "src")

from repro.costs.model import BandwidthCostModel, HopCostModel, LatencyCostModel
from repro.sim.architecture import (
    build_enroute_architecture,
    build_hierarchical_architecture,
)
from repro.sim.factory import SCHEME_NAMES, build_scheme
from repro.verify.fastpath_diff import shadow_compare
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig
from repro.workload.updates import generate_update_events


def run_all():
    cfg = WorkloadConfig(
        num_objects=600,
        num_requests=6000,
        num_clients=40,
        num_servers=6,
        seed=7,
    )
    gen = BoeingLikeTraceGenerator(cfg)
    trace = gen.generate()
    ctrace = gen.generate_columnar()
    catalog = gen.catalog
    updates = generate_update_events(
        600, duration=trace.duration, update_rate=2.0, seed=11
    )
    archs = {
        "hier": build_hierarchical_architecture(40, 6, seed=3),
        "enroute": build_enroute_architecture(40, 6, seed=3),
    }
    cost_builders = {
        "latency": lambda net: LatencyCostModel(net, catalog.mean_size),
        "hop": lambda net: HopCostModel(net),
        "bw": lambda net: BandwidthCostModel(net),
    }
    capacity = max(1, int(catalog.total_bytes * 0.01))
    failures = 0
    for arch_name, arch in archs.items():
        for cost_name, build_cost in cost_builders.items():
            if cost_name != "latency" and arch_name == "enroute":
                continue  # keep runtime sane; latency covers both archs
            cost = build_cost(arch.network)
            for scheme_name in SCHEME_NAMES:
                tag = f"{arch_name}/{cost_name}/{scheme_name}"
                try:
                    shadow_compare(
                        arch,
                        cost,
                        lambda: build_scheme(scheme_name, cost, capacity, 256),
                        trace,
                        ctrace,
                        updates=updates,
                        tag=tag,
                    )
                except AssertionError as exc:
                    failures += 1
                    print(f"FAIL {tag}: {exc}")
                    continue
                print(f"ok   {tag}")
    print("ALL OK" if failures == 0 else f"{failures} FAILURES")
    return failures


if __name__ == "__main__":
    sys.exit(1 if run_all() else 0)
