"""Simulator throughput benchmark: reference loop vs columnar fast path.

Measures requests/second for the fast-path-eligible schemes on both
architectures, the trace-build cost of ``generate()`` vs
``generate_columnar()``, and peak RSS, and writes the result to
``BENCH_sim.json``.  The committed ``BENCH_sim.json`` at the repo root
is this script's output on the PR machine; ``--check`` replays the
benchmark and fails if the fast path's speedup *ratio* regressed by
more than ``--tolerance`` (default 20%) against that baseline.

Ratios, not raw req/s, are the regression currency: absolute throughput
moves with the machine, while fast/reference measured back-to-back in
one process is stable enough to gate on.  Each timing is the best of
``--repeats`` runs (wall-clock noise on shared machines is +/-40%;
min-of-N is the standard antidote, same as the micro benchmarks).

Usage:
    PYTHONPATH=src python scripts/bench_sim.py                  # full, writes BENCH_sim.json
    PYTHONPATH=src python scripts/bench_sim.py --quick          # small preset, no write
    PYTHONPATH=src python scripts/bench_sim.py --quick --check  # CI regression gate
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.costs.model import LatencyCostModel  # noqa: E402
from repro.sim.architecture import (  # noqa: E402
    build_enroute_architecture,
    build_hierarchical_architecture,
)
from repro.sim.engine import SimulationEngine  # noqa: E402
from repro.sim.factory import build_scheme  # noqa: E402
from repro.workload.generator import (  # noqa: E402
    BoeingLikeTraceGenerator,
    WorkloadConfig,
)

# Fast-path-eligible schemes (the rest take the generic columnar loop,
# which is a dispatch refactor, not a headline kernel).
SCHEMES = ("lru", "modulo", "coordinated")

PRESETS = {
    "full": {
        "workload": dict(
            num_objects=2_000,
            num_requests=60_000,
            num_clients=64,
            num_servers=8,
            zipf_theta=0.8,
            seed=7,
        ),
        "archs": ("hier", "enroute"),
        "repeats": 3,
    },
    "quick": {
        "workload": dict(
            num_objects=600,
            num_requests=12_000,
            num_clients=40,
            num_servers=6,
            zipf_theta=0.8,
            seed=7,
        ),
        "archs": ("hier",),
        "repeats": 2,
    },
}

_CAPACITY_FRACTION = 0.01
_DCACHE_ENTRIES = 256


def _best_of(repeats: int, fn):
    """Min wall-clock over ``repeats`` calls; returns (seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _build_arch(name: str, workload: dict):
    builder = {
        "hier": build_hierarchical_architecture,
        "enroute": build_enroute_architecture,
    }[name]
    return builder(workload["num_clients"], workload["num_servers"], seed=3)


def run_benchmark(preset_name: str) -> dict:
    preset = PRESETS[preset_name]
    workload = preset["workload"]
    repeats = preset["repeats"]
    cfg = WorkloadConfig(**workload)

    build_ref_s, trace = _best_of(
        repeats, lambda: BoeingLikeTraceGenerator(cfg).generate()
    )
    build_fast_s, columnar = _best_of(
        repeats, lambda: BoeingLikeTraceGenerator(cfg).generate_columnar()
    )
    catalog = BoeingLikeTraceGenerator(cfg).catalog
    capacity = max(1, int(catalog.total_bytes * _CAPACITY_FRACTION))

    runs = {}
    for arch_name in preset["archs"]:
        arch = _build_arch(arch_name, workload)
        cost = LatencyCostModel(arch.network, catalog.mean_size)
        for scheme_name in SCHEMES:

            def one(input_trace):
                scheme = build_scheme(scheme_name, cost, capacity, _DCACHE_ENTRIES)
                return SimulationEngine(arch, cost, scheme).run(input_trace)

            ref_s, ref = _best_of(repeats, lambda: one(trace))
            fast_s, fast = _best_of(repeats, lambda: one(columnar))
            assert fast.summary == ref.summary, (
                f"fast path diverged on {arch_name}/{scheme_name}"
            )
            n = len(trace)
            runs[f"{arch_name}/{scheme_name}"] = {
                "reference_rps": round(n / ref_s, 1),
                "fast_rps": round(n / fast_s, 1),
                "speedup": round(ref_s / fast_s, 2),
            }

    return {
        "preset": preset_name,
        "num_requests": workload["num_requests"],
        "num_objects": workload["num_objects"],
        "trace_build": {
            "generate_s": round(build_ref_s, 4),
            "generate_columnar_s": round(build_fast_s, 4),
            "speedup": round(build_ref_s / build_fast_s, 2),
        },
        "runs": runs,
        "peak_rss_mb": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1
        ),
    }


def check_against_baseline(
    current: dict, baseline_path: Path, tolerance: float
) -> int:
    """0 if every measured speedup is within tolerance of the baseline.

    Speedups are compared against the *same preset's* baseline runs --
    the full baseline embeds a ``quick`` section precisely so the CI
    gate (which runs ``--quick``) never compares a small-trace ratio
    against a large-trace one (amortization alone separates them).
    """
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("preset") != current["preset"]:
        baseline = baseline.get("quick", {})
    baseline_runs = baseline.get("runs", {})
    if not baseline_runs:
        print(f"baseline {baseline_path} has no {current['preset']} runs")
        return 1
    failures = 0
    for key, run in current["runs"].items():
        base = baseline_runs.get(key)
        if base is None:
            continue
        floor = base["speedup"] * (1.0 - tolerance)
        status = "ok  " if run["speedup"] >= floor else "FAIL"
        if run["speedup"] < floor:
            failures += 1
        print(
            f"{status} {key}: speedup {run['speedup']}x "
            f"(baseline {base['speedup']}x, floor {floor:.2f}x)"
        )
    if failures:
        print(f"{failures} run(s) regressed beyond {tolerance:.0%} tolerance")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small preset (CI-sized)"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write the report here (default: BENCH_sim.json for the full "
        "preset, stdout only for --quick)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare speedups against the committed baseline and fail on "
        "regression",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_sim.json",
        help="baseline file for --check",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional speedup regression for --check",
    )
    args = parser.parse_args(argv)

    preset = "quick" if args.quick else "full"
    report = run_benchmark(preset)
    if not args.quick:
        # Embed a quick-preset baseline so `--quick --check` in CI
        # compares like against like.
        report["quick"] = run_benchmark("quick")
    print(json.dumps(report, indent=2))

    out = args.out
    if out is None and not args.quick:
        out = Path(__file__).resolve().parent.parent / "BENCH_sim.json"
    if out is not None:
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {out}")

    if args.check:
        if not args.baseline.exists():
            print(f"no baseline at {args.baseline}; nothing to check against")
            return 1
        return 1 if check_against_baseline(
            report, args.baseline, args.tolerance
        ) else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
