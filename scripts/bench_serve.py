"""Live-cluster saturation benchmark: sharded serve vs open-loop load.

Stands up a :class:`~repro.serve.shard.ShardedCluster` (worker processes
connected over loopback TCP), then drives it with a **multi-process
open-loop load generator**: ``--procs`` driver processes, each pacing a
round-robin slice of a Poisson-retimed trace at absolute wall-clock fire
times, so the combined arrival process offers a controlled aggregate
rate regardless of how fast the cluster answers.  Levels sweep the
offered rate upward and record the saturation curve -- achieved
throughput, wall-latency percentiles, and backpressure counters per
level -- into ``BENCH_serve.json``.

The **saturation point** is the highest offered level the cluster
sustains: achieved >= ``SUSTAIN_RATIO`` x offered, zero client-visible
errors, and p99 wall latency under ``--p99-bound``.  Client rejections
(``busy`` shed after retries) are backpressure, not failure: they cap
the achieved rate and show up in the curve, which is exactly how an
admission-controlled system is supposed to saturate.

Ratios, not raw req/s, are the regression currency (same convention as
``bench_sim.py``): the committed baseline's ``quick`` section records
the achieved/offered ratio at a level far below any machine's
saturation, and ``--quick --check`` fails if that ratio regresses by
more than ``--tolerance`` or any quick level sees client-visible
errors.

Usage:
    PYTHONPATH=src python scripts/bench_serve.py                  # full, writes BENCH_serve.json
    PYTHONPATH=src python scripts/bench_serve.py --quick          # CI-sized, no write
    PYTHONPATH=src python scripts/bench_serve.py --quick --check  # CI regression gate
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import multiprocessing
import random
import resource
import sys
import time
import traceback
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.costs.model import LatencyCostModel  # noqa: E402
from repro.experiments.presets import build_architecture  # noqa: E402
from repro.serve import ClusterClient, LoadGenerator, TCPTransport  # noqa: E402
from repro.serve.shard import ShardedCluster  # noqa: E402
from repro.sim.config import SimulationConfig  # noqa: E402
from repro.workload.generator import (  # noqa: E402
    BoeingLikeTraceGenerator,
    WorkloadConfig,
)
from repro.workload.trace import Trace, TraceRecord  # noqa: E402

# A level is "sustained" when achieved/offered stays above this.
SUSTAIN_RATIO = 0.9

PRESETS = {
    # Sized for a small CI box: the interesting part is the *shape* of
    # the curve (flat ratio, then the knee), not the absolute knee.
    "full": {
        "workload": dict(
            num_objects=2_000,
            num_servers=8,
            num_clients=20_000,
            num_requests=20_000,
            zipf_theta=0.8,
            seed=7,
        ),
        "arch": "hierarchical",
        "scheme": "coordinated",
        "shards": 2,
        "procs": 2,
        "levels": (50, 100, 200, 400, 800, 1600),
        "seconds": 10.0,
        "max_inflight": 512,
        "inflight_limit": 20_000,
        "conn_cap": 64,
    },
    "quick": {
        "workload": dict(
            num_objects=500,
            num_servers=4,
            num_clients=200,
            num_requests=4_000,
            zipf_theta=0.8,
            seed=7,
        ),
        "arch": "hierarchical",
        "scheme": "coordinated",
        "shards": 2,
        "procs": 1,
        "levels": (25, 100),
        "seconds": 6.0,
        "max_inflight": 512,
        "inflight_limit": 20_000,
        "conn_cap": 32,
    },
}

_CACHE_SIZE = 0.01
_ARCH_SEED = 4


def _retime(base: Trace, offered_rps: float, seconds: float, seed: int):
    """A Poisson arrival stream at ``offered_rps`` cycled over ``base``.

    Returns plain record tuples (picklable for the driver pipes); the
    cycled base trace supplies the popularity/attachment structure, the
    exponential inter-arrivals supply the offered load.
    """
    rng = random.Random(seed)
    records = []
    now = 0.0
    index = 0
    n = len(base)
    while now < seconds:
        r = base[index % n]
        records.append((now, r.client_id, r.object_id, r.server_id, r.size))
        now += rng.expovariate(offered_rps)
        index += 1
    return records


def _bench_worker_main(spec: dict, conn) -> None:
    """One persistent load-driver process (spawn-safe, module level).

    Protocol: recv ``("run", records)`` -> drive the slice open-loop ->
    send ``("result", {...})``; recv ``("exit",)`` -> return.  Crashes
    are shipped back as ``("error", traceback)``.
    """
    try:
        workload = WorkloadConfig(**spec["workload"])
        generator = BoeingLikeTraceGenerator(workload)
        arch = build_architecture(spec["arch"], workload, seed=_ARCH_SEED)
        cost_model = LatencyCostModel(arch.network, generator.catalog.mean_size)
        addresses = {int(n): tuple(a) for n, a in spec["addresses"].items()}

        async def drive(records) -> dict:
            trace = Trace(
                [
                    TraceRecord(
                        time=t,
                        client_id=c,
                        object_id=o,
                        server_id=srv,
                        size=size,
                    )
                    for t, c, o, srv, size in records
                ]
            )
            client = ClusterClient(
                arch,
                cost_model,
                addresses,
                TCPTransport(max_connections_per_address=spec["conn_cap"]),
            )
            loadgen = LoadGenerator(client, trace, warmup_fraction=0.2)
            try:
                report = await loadgen.run(
                    mode="open",
                    speedup=1.0,  # fire times are already wall seconds
                    max_errors=1_000_000_000,  # count, never abort
                    open_inflight_limit=spec["inflight_limit"],
                    busy_retries=3,
                )
            finally:
                await client.close()
            completed = report.cache_served + report.origin_served
            return {
                "offered": len(trace),
                "completed": completed,
                "measured_rps": report.requests_per_second,
                "errors": report.errors,
                "rejected": report.rejected,
                "shed": report.shed,
                "busy_retries": report.busy_retries,
                # Wall samples travel back for cross-process percentile
                # merging; a level is at most a few tens of thousands.
                "wall": [round(w, 6) for w in loadgen.last_wall_samples],
            }

        while True:
            message = conn.recv()
            if message[0] == "exit":
                return
            if message[0] != "run":
                raise RuntimeError(f"unexpected command {message[0]!r}")
            conn.send(("result", asyncio.run(drive(message[1]))))
    except Exception:  # noqa: BLE001 - shipped to the parent verbatim
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


def _percentile(samples, q: float):
    if not samples:
        return None
    ordered = sorted(samples)
    return ordered[max(0, math.ceil(q * len(ordered)) - 1)]


def run_benchmark(preset_name: str) -> dict:
    preset = PRESETS[preset_name]
    workload = WorkloadConfig(**preset["workload"])
    generator = BoeingLikeTraceGenerator(workload)
    base = generator.generate()
    arch = build_architecture(preset["arch"], workload, seed=_ARCH_SEED)
    config = SimulationConfig(relative_cache_size=_CACHE_SIZE)

    cluster = ShardedCluster(
        arch,
        generator.catalog,
        preset["scheme"],
        num_shards=preset["shards"],
        config=config,
        max_inflight=preset["max_inflight"],
    )
    addresses = cluster.start()
    procs = preset["procs"]
    ctx = multiprocessing.get_context("spawn")
    workers = []
    pipes = []
    levels = []
    try:
        spec = {
            "workload": preset["workload"],
            "arch": preset["arch"],
            "addresses": {n: list(a) for n, a in addresses.items()},
            "conn_cap": preset["conn_cap"],
            "inflight_limit": preset["inflight_limit"],
        }
        for worker_index in range(procs):
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_bench_worker_main,
                args=(spec, child_conn),
                daemon=True,
                name=f"bench-driver-{worker_index}",
            )
            process.start()
            child_conn.close()
            workers.append(process)
            pipes.append(parent_conn)

        for level_index, offered in enumerate(preset["levels"]):
            records = _retime(
                base, float(offered), preset["seconds"], seed=100 + level_index
            )
            slices = [records[p::procs] for p in range(procs)]
            started = time.perf_counter()
            for conn, piece in zip(pipes, slices):
                conn.send(("run", piece))
            results = []
            for worker_index, conn in enumerate(pipes):
                deadline = preset["seconds"] * 10 + 120
                if not conn.poll(deadline):
                    raise RuntimeError(
                        f"driver {worker_index} stalled on level {offered}"
                    )
                message = conn.recv()
                if message[0] == "error":
                    raise RuntimeError(
                        f"driver {worker_index} crashed:\n{message[1]}"
                    )
                results.append(message[1])
            wall_clock = time.perf_counter() - started
            offered_total = sum(r["offered"] for r in results)
            completed = sum(r["completed"] for r in results)
            errors = sum(r["errors"] for r in results)
            rejected = sum(r["rejected"] for r in results)
            shed = sum(r["shed"] for r in results)
            walls = [w for r in results for w in r["wall"]]
            achieved = completed / wall_clock if wall_clock > 0 else 0.0
            level = {
                "offered_rps": offered,
                "offered_requests": offered_total,
                "completed": completed,
                "achieved_rps": round(achieved, 1),
                "achieved_ratio": round(achieved / offered, 3),
                "errors": errors,
                "rejected": rejected,
                "shed": shed,
                "busy_retries": sum(r["busy_retries"] for r in results),
                "wall_p50": _percentile(walls, 0.50),
                "wall_p90": _percentile(walls, 0.90),
                "wall_p99": _percentile(walls, 0.99),
            }
            levels.append(level)
            print(
                f"level {offered:>5} rps: achieved {level['achieved_rps']:>7} "
                f"(ratio {level['achieved_ratio']:.2f}) "
                f"p99 {level['wall_p99'] if level['wall_p99'] is None else round(level['wall_p99'], 4)}s "
                f"errors {errors} rejected {rejected} shed {shed}",
                flush=True,
            )
        for conn in pipes:
            conn.send(("exit",))
        for process in workers:
            process.join(timeout=10.0)
    finally:
        for process in workers:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        cluster.stop()
    return levels


def summarize(preset_name: str, levels, p99_bound: float) -> dict:
    preset = PRESETS[preset_name]
    saturation = None
    for level in levels:
        ok = (
            level["achieved_ratio"] >= SUSTAIN_RATIO
            and level["errors"] == 0
            and (level["wall_p99"] is None or level["wall_p99"] <= p99_bound)
        )
        if ok:
            saturation = level
    return {
        "preset": preset_name,
        "scheme": preset["scheme"],
        "arch": preset["arch"],
        "shards": preset["shards"],
        "procs": preset["procs"],
        "clients": preset["workload"]["num_clients"],
        "seconds_per_level": preset["seconds"],
        "p99_bound_s": p99_bound,
        "sustain_ratio": SUSTAIN_RATIO,
        "levels": levels,
        "saturation": (
            None
            if saturation is None
            else {
                "offered_rps": saturation["offered_rps"],
                "achieved_rps": saturation["achieved_rps"],
                "wall_p99": saturation["wall_p99"],
            }
        ),
    }


def check_against_baseline(
    current: dict, baseline_path: Path, tolerance: float
) -> int:
    """0 when the quick curve holds up against the committed baseline.

    Two machine-portable invariants: the achieved/offered ratio at the
    *lowest* quick level (far below any machine's knee, so it should sit
    near 1.0 everywhere) must not regress beyond ``tolerance``, and no
    quick level may show client-visible errors.
    """
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("preset") != current["preset"]:
        baseline = baseline.get("quick", {})
    base_levels = baseline.get("levels", [])
    if not base_levels:
        print(f"baseline {baseline_path} has no {current['preset']} levels")
        return 1
    failures = 0
    base_low = base_levels[0]
    cur_low = current["levels"][0]
    floor = base_low["achieved_ratio"] * (1.0 - tolerance)
    status = "ok  " if cur_low["achieved_ratio"] >= floor else "FAIL"
    if cur_low["achieved_ratio"] < floor:
        failures += 1
    print(
        f"{status} level {cur_low['offered_rps']} rps: ratio "
        f"{cur_low['achieved_ratio']:.3f} (baseline "
        f"{base_low['achieved_ratio']:.3f}, floor {floor:.3f})"
    )
    for level in current["levels"]:
        status = "ok  " if level["errors"] == 0 else "FAIL"
        if level["errors"]:
            failures += 1
        print(
            f"{status} level {level['offered_rps']} rps: "
            f"{level['errors']} client-visible errors"
        )
    if failures:
        print(f"{failures} check(s) failed beyond {tolerance:.0%} tolerance")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized preset"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write the report here (default: BENCH_serve.json for the "
        "full preset, stdout only for --quick)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline and fail on regression",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_serve.json",
        help="baseline file for --check",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional ratio regression for --check",
    )
    parser.add_argument(
        "--p99-bound",
        type=float,
        default=2.0,
        help="p99 wall-latency bound (seconds) for calling a level sustained",
    )
    args = parser.parse_args(argv)

    preset = "quick" if args.quick else "full"
    report = summarize(preset, run_benchmark(preset), args.p99_bound)
    if not args.quick:
        # Embed a quick-preset baseline so `--quick --check` in CI
        # compares like against like.
        report["quick"] = summarize(
            "quick", run_benchmark("quick"), args.p99_bound
        )
    report["peak_rss_mb"] = round(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1
    )
    print(json.dumps(report, indent=2))

    out = args.out
    if out is None and not args.quick:
        out = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
    if out is not None:
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {out}")

    if args.check:
        if not args.baseline.exists():
            print(f"no baseline at {args.baseline}; nothing to check against")
            return 1
        return (
            1
            if check_against_baseline(report, args.baseline, args.tolerance)
            else 0
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
