"""Extension E4: replication density follows popularity.

Direct observation of the paper's mechanism (section 4.1: coordinated
caching places "popular objects closer to the clients" and avoids
replicating unpopular objects): after replaying the trace, the mean
number of copies per object must decrease from the most-popular to the
least-popular decile under the coordinated scheme, with the top decile
replicated clearly more densely than the bottom half.
"""

from __future__ import annotations

from repro.costs.model import LatencyCostModel
from repro.experiments.presets import build_architecture
from repro.metrics.replication import density_by_popularity
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.factory import build_scheme

CACHE_SIZE = 0.03


def test_extension_replication_density(benchmark, sweep_store):
    preset = sweep_store.preset()
    generator = preset.generator()
    trace = generator.generate()
    catalog = generator.catalog
    arch = build_architecture("en-route", preset.workload, seed=1)
    cost = LatencyCostModel(arch.network, catalog.mean_size)
    config = SimulationConfig(relative_cache_size=CACHE_SIZE)
    capacity = config.capacity_bytes(catalog.total_bytes)
    dentries = config.dcache_entries(catalog.total_bytes, catalog.mean_size)
    ranking = trace.most_popular(catalog.num_objects)

    def run_all():
        densities = {}
        for name in ("lru", "coordinated"):
            scheme = build_scheme(name, cost, capacity, dentries)
            SimulationEngine(arch, cost, scheme).run(trace)
            densities[name] = density_by_popularity(scheme, ranking, buckets=10)
        return densities

    densities = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print("=" * 72)
    print(f"Extension E4: copies per object by popularity decile (cache {CACHE_SIZE:.0%})")
    print("=" * 72)
    print(f"{'decile':>6}  {'coordinated':>11}  {'lru':>7}")
    for i, (coord, lru) in enumerate(
        zip(densities["coordinated"], densities["lru"])
    ):
        print(f"{i:>6}  {coord:>11.2f}  {lru:>7.2f}")

    coord = densities["coordinated"]
    # Top decile denser than the bottom half, and density trends downward.
    bottom_half = sum(coord[5:]) / 5
    assert coord[0] > 2 * max(bottom_half, 0.05)
    assert coord[0] >= coord[3] >= coord[7] - 1e-9
