"""Extension E7: robustness to non-IRM workload structure.

The paper's traces carry temporal structure the independent-reference
model lacks.  This bench re-runs the comparison with the generator's two
realism knobs turned up -- short-range temporal locality (LRU-stack
bursts) and a strong diurnal load cycle -- and asserts the coordinated
scheme keeps its latency win under both.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.presets import build_architecture
from repro.experiments.sweeps import run_cache_size_sweep
from repro.experiments.tables import format_sweep_table
from repro.workload.generator import BoeingLikeTraceGenerator

CACHE_SIZE = 0.03

VARIANTS = {
    "irm": {},
    "bursty": {"temporal_locality": 0.4, "locality_window": 32},
    "diurnal": {"diurnal_amplitude": 0.8, "diurnal_period": 120.0},
}


def test_ablation_workload_realism(benchmark, sweep_store):
    base_workload = sweep_store.preset().workload

    def run_all():
        results = {}
        for label, overrides in VARIANTS.items():
            workload = replace(base_workload, **overrides)
            generator = BoeingLikeTraceGenerator(workload)
            trace = generator.generate()
            arch = build_architecture("en-route", workload, seed=1)
            results[label] = run_cache_size_sweep(
                arch,
                trace,
                generator.catalog,
                scheme_names=("lru", "coordinated"),
                cache_sizes=(CACHE_SIZE,),
            )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print("=" * 72)
    print(f"Extension E7: workload realism (en-route, cache {CACHE_SIZE:.0%})")
    print("=" * 72)
    for label, points in results.items():
        print(format_sweep_table(
            points, ["latency", "byte_hit_ratio"], title=label
        ))
        print()

    for label, points in results.items():
        latency = {p.scheme: p.summary.mean_latency for p in points}
        assert latency["coordinated"] < latency["lru"], (label, latency)

    # Bursty reuse should lift hit ratios for everyone relative to IRM.
    def hit(label, scheme):
        return next(
            p.summary.byte_hit_ratio
            for p in results[label]
            if p.scheme == scheme
        )

    assert hit("bursty", "lru") > hit("irm", "lru")
