"""Extension E2: adaptivity under a flash crowd.

A non-stationary stress absent from the paper's (stationary-trace)
evaluation: one previously cold object suddenly receives a burst of
requests.  The coordinated scheme's sliding-window estimator should pick
the surge up within a few references and replicate the object toward
clients, so during the crowd its latency advantage over LRU must persist
and the hot object must actually get cached in the network.
"""

from __future__ import annotations

from repro.costs.model import LatencyCostModel
from repro.experiments.presets import build_architecture
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.factory import build_scheme
from repro.workload.scenarios import inject_flash_crowd

CACHE_SIZE = 0.03


def test_flash_crowd_adaptivity(benchmark, sweep_store):
    preset = sweep_store.preset()
    generator = preset.generator()
    base_trace = generator.generate()
    catalog = generator.catalog
    workload = preset.workload
    arch = build_architecture("en-route", workload, seed=1)
    cost = LatencyCostModel(arch.network, catalog.mean_size)
    config = SimulationConfig(relative_cache_size=CACHE_SIZE)
    capacity = config.capacity_bytes(catalog.total_bytes)
    dentries = config.dcache_entries(catalog.total_bytes, catalog.mean_size)

    # Burst in the measurement window (second half of the trace).
    start = base_trace.duration * 0.6
    hot_object = 17
    crowded = inject_flash_crowd(
        base_trace,
        catalog,
        object_id=hot_object,
        start=start,
        duration=base_trace.duration * 0.2,
        extra_rate=30.0,
        num_clients=workload.num_clients,
        seed=5,
    )

    def run_all():
        results = {}
        for name in ("lru", "coordinated"):
            scheme = build_scheme(name, cost, capacity, dentries)
            results[name] = (
                SimulationEngine(arch, cost, scheme).run(crowded),
                scheme,
            )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print("=" * 72)
    print("Extension E2: flash crowd (en-route, cache 3%)")
    print("=" * 72)
    for name, (result, scheme) in results.items():
        copies = sum(
            1 for node in scheme.caches() if scheme.has_object(node, hot_object)
        )
        s = result.summary
        print(
            f"{name:<12} latency={s.mean_latency:.4f} "
            f"byte_hit={s.byte_hit_ratio:.4f} "
            f"final copies of hot object: {copies}"
        )

    coord_result, coord_scheme = results["coordinated"]
    lru_result, _ = results["lru"]
    assert coord_result.summary.mean_latency < lru_result.summary.mean_latency
    # The surge object ended up replicated somewhere in the network.
    copies = sum(
        1
        for node in coord_scheme.caches()
        if coord_scheme.has_object(node, hot_object)
    )
    assert copies >= 1
