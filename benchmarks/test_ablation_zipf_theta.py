"""Ablation A4: Zipf-parameter robustness (paper section 3.1).

The paper's workload argument rests on Zipf-like popularity; Breslau et
al. measured theta between roughly 0.6 and 0.85 on proxy traces.  This
bench re-runs the en-route comparison for theta in {0.6, 0.8, 1.0} and
asserts the coordinated scheme's latency win is not an artifact of one
particular skew.
"""

from __future__ import annotations

from repro.experiments.presets import build_architecture
from repro.experiments.sweeps import run_cache_size_sweep
from repro.experiments.tables import format_sweep_table

THETAS = (0.6, 0.8, 1.0)
CACHE_SIZE = 0.03


def test_ablation_zipf_theta(benchmark, sweep_store):
    def run_all():
        results = {}
        for theta in THETAS:
            preset = sweep_store.preset().with_theta(theta)
            generator = preset.generator()
            trace = generator.generate()
            arch = build_architecture("en-route", preset.workload, seed=1)
            results[theta] = run_cache_size_sweep(
                arch,
                trace,
                generator.catalog,
                scheme_names=("lru", "lnc-r", "coordinated"),
                cache_sizes=(CACHE_SIZE,),
            )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print("=" * 72)
    print(f"Ablation A4: Zipf parameter theta (en-route, cache {CACHE_SIZE:.0%})")
    print("=" * 72)
    for theta, points in results.items():
        print(format_sweep_table(points, ["latency", "byte_hit_ratio"],
                                 title=f"theta = {theta}"))
        print()

    for theta, points in results.items():
        latency = {p.scheme: p.summary.mean_latency for p in points}
        hit = {p.scheme: p.summary.byte_hit_ratio for p in points}
        assert latency["coordinated"] == min(latency.values()), (theta, latency)
        assert hit["coordinated"] == max(hit.values()), (theta, hit)

    # Stronger skew means more cacheable mass: the coordinated scheme's
    # byte hit ratio should rise with theta.
    hits = [
        next(p for p in results[t] if p.scheme == "coordinated").summary.byte_hit_ratio
        for t in THETAS
    ]
    assert hits[0] < hits[-1]
