"""Ablation A2: d-cache size sensitivity (paper section 3.2).

The paper states results were similar whenever the d-cache could hold the
same order of descriptors as the main cache holds objects, and defaults
to 3x.  This bench sweeps the d-cache ratio for the coordinated scheme
and asserts (a) a starved d-cache (well under 1x) hurts, and (b) the
curve flattens beyond the paper's default.
"""

from __future__ import annotations

from repro.experiments.presets import build_architecture
from repro.experiments.sweeps import run_single
from repro.sim.config import SimulationConfig

RATIOS = (0.25, 1.0, 3.0, 8.0)
CACHE_SIZE = 0.03


def test_ablation_dcache_ratio(benchmark, sweep_store):
    preset = sweep_store.preset()
    generator = preset.generator()
    trace = generator.generate()
    catalog = generator.catalog
    arch = build_architecture("en-route", preset.workload, seed=1)

    def run_all():
        results = {}
        for ratio in RATIOS:
            config = SimulationConfig(
                relative_cache_size=CACHE_SIZE, dcache_ratio=ratio
            )
            point = run_single(arch, trace, catalog, "coordinated", config)
            results[ratio] = point.summary
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print("=" * 72)
    print(f"Ablation A2: d-cache ratio (coordinated, cache {CACHE_SIZE:.0%})")
    print("=" * 72)
    print(f"{'ratio':>6}  {'latency':>10}  {'byte_hit':>9}  {'hit':>6}")
    for ratio, summary in results.items():
        print(
            f"{ratio:>6}  {summary.mean_latency:>10.5f}  "
            f"{summary.byte_hit_ratio:>9.4f}  {summary.hit_ratio:>6.3f}"
        )

    # A starved d-cache loses byte hit ratio against the paper default.
    assert results[0.25].byte_hit_ratio <= results[3.0].byte_hit_ratio + 1e-9
    # Beyond the default, growing the d-cache changes little (<15% relative
    # latency movement between 3x and 8x).
    base = results[3.0].mean_latency
    assert abs(results[8.0].mean_latency - base) / base < 0.15
