"""Ablation A6: cost-function generality (paper section 2).

The analytical model is "independent of the cost function" -- cost can be
latency, bandwidth, hops or any additive per-link measure.  This bench
re-runs the en-route comparison with the coordinated scheme *optimizing*
a hop-count cost instead of latency and checks it still wins on the
metric it optimizes (mean hops), demonstrating the framework's
cost-model pluggability end to end.
"""

from __future__ import annotations

from repro.costs.model import HopCostModel, LatencyCostModel
from repro.experiments.presets import build_architecture
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.factory import build_scheme

CACHE_SIZE = 0.03


def test_ablation_cost_model_generality(benchmark, sweep_store):
    preset = sweep_store.preset()
    generator = preset.generator()
    trace = generator.generate()
    catalog = generator.catalog
    arch = build_architecture("en-route", preset.workload, seed=1)
    config = SimulationConfig(relative_cache_size=CACHE_SIZE)
    capacity = config.capacity_bytes(catalog.total_bytes)
    dentries = config.dcache_entries(catalog.total_bytes, catalog.mean_size)

    def run_all():
        results = {}
        for label, cost_model in (
            ("latency-cost", LatencyCostModel(arch.network, catalog.mean_size)),
            ("hop-cost", HopCostModel(arch.network)),
        ):
            for name in ("lru", "coordinated"):
                scheme = build_scheme(name, cost_model, capacity, dentries)
                result = SimulationEngine(arch, cost_model, scheme).run(trace)
                results[(label, name)] = result.summary
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print("=" * 72)
    print(f"Ablation A6: cost-model generality (cache {CACHE_SIZE:.0%})")
    print("=" * 72)
    print(f"{'cost model':<14} {'scheme':<12} {'mean hops':>9} {'byte hit':>9}")
    for (label, name), summary in results.items():
        print(
            f"{label:<14} {name:<12} {summary.mean_hops:>9.3f} "
            f"{summary.byte_hit_ratio:>9.4f}"
        )

    # Under each cost interpretation, coordinated beats LRU on hops.
    for label in ("latency-cost", "hop-cost"):
        assert (
            results[(label, "coordinated")].mean_hops
            < results[(label, "lru")].mean_hops
        )
    # Optimizing hops should do at least as well on hops as optimizing
    # latency does (they usually coincide closely on this topology).
    assert (
        results[("hop-cost", "coordinated")].mean_hops
        <= results[("latency-cost", "coordinated")].mean_hops * 1.15
    )
