"""Extension E3: online coordinated caching vs an offline oracle plan.

The oracle solves each popular object's placement *optimally* on the
hierarchy (tree DP, :mod:`repro.analysis.tree_placement`) using the true
generator request rates, then holds that placement fixed.  The online
coordinated scheme has to discover the same structure from sliding-window
estimates.  Expected picture:

* both leave LRU far behind;
* the online scheme lands in the oracle's neighborhood on latency --
  the gap between them is the price of online estimation, and it can even
  go *negative* at small caches because the online scheme reacts to the
  realized request sequence while the oracle only knows ensemble rates.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.static_plan import greedy_static_plan
from repro.costs.model import LatencyCostModel
from repro.experiments.presets import build_architecture
from repro.schemes.static import StaticPlacementScheme
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.factory import build_scheme
from repro.workload.zipf import ZipfSampler

CACHE_SIZE = 0.05


def _true_rates(workload):
    sampler = ZipfSampler(workload.num_objects, workload.zipf_theta)
    rng = np.random.default_rng(workload.seed + 1)
    rank_to_object = rng.permutation(workload.num_objects)
    rates = np.zeros(workload.num_objects)
    for rank in range(workload.num_objects):
        rates[rank_to_object[rank]] = (
            sampler.probability(rank) * workload.request_rate
        )
    return rates


def test_extension_static_oracle(benchmark, sweep_store):
    preset = sweep_store.preset()
    workload = preset.workload
    generator = preset.generator()
    trace = generator.generate()
    catalog = generator.catalog
    arch = build_architecture("hierarchical", workload, seed=1)
    cost = LatencyCostModel(arch.network, catalog.mean_size)
    config = SimulationConfig(relative_cache_size=CACHE_SIZE)
    capacity = config.capacity_bytes(catalog.total_bytes)
    dentries = config.dcache_entries(catalog.total_bytes, catalog.mean_size)

    def run_all():
        results = {}
        plan = greedy_static_plan(arch, catalog, _true_rates(workload), capacity)
        oracle = StaticPlacementScheme(
            cost, capacity, placements=plan, catalog=catalog
        )
        results["static-oracle"] = SimulationEngine(arch, cost, oracle).run(trace)
        for name in ("lru", "coordinated"):
            scheme = build_scheme(name, cost, capacity, dentries)
            results[name] = SimulationEngine(arch, cost, scheme).run(trace)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print("=" * 72)
    print(f"Extension E3: online vs offline-oracle placement (cache {CACHE_SIZE:.0%})")
    print("=" * 72)
    for name, result in results.items():
        s = result.summary
        print(
            f"{name:<14} latency={s.mean_latency:.4f} "
            f"byte_hit={s.byte_hit_ratio:.4f} hops={s.mean_hops:.3f}"
        )

    lru = results["lru"].summary
    coord = results["coordinated"].summary
    oracle = results["static-oracle"].summary
    assert coord.mean_latency < lru.mean_latency
    assert oracle.mean_latency < lru.mean_latency
    # Online coordination lands within 2x of the informed offline plan.
    assert coord.mean_latency < 2.0 * oracle.mean_latency
