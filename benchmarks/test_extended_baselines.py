"""Extension E1: the coordinated scheme vs a wider baseline family.

Beyond the paper's three baselines, this bench adds LFU-everywhere,
GreedyDual-Size-Popularity [8] and an admission-controlled LRU in the
spirit of Aggarwal et al. [2] (all cited in the paper's related work,
section 5) and checks the central claim survives stronger competition:
per-cache replacement or admission optimizations alone -- however
sophisticated -- do not match coordinated placement + replacement.

One measured nuance worth knowing: at large caches LFU-everywhere can
squeeze out a slightly *higher raw byte hit ratio* (it keeps popular
objects at every node), yet still loses on access latency, hops and cache
load -- the quantities the coordinated scheme actually optimizes.  The
assertions encode that: strict wins on latency/hops/load, and byte hit
ratio within a few percent of the best baseline.
"""

from __future__ import annotations

from repro.experiments.presets import build_architecture
from repro.experiments.sweeps import run_cache_size_sweep
from repro.experiments.tables import format_sweep_table

SCHEMES = ("lru", "lfu", "gds", "admission-lru", "lnc-r", "modulo", "coordinated")
CACHE_SIZES = (0.01, 0.1)


def test_extended_baseline_comparison(benchmark, sweep_store):
    preset = sweep_store.preset()
    generator = preset.generator()
    trace = generator.generate()
    arch = build_architecture("en-route", preset.workload, seed=1)

    points = benchmark.pedantic(
        lambda: run_cache_size_sweep(
            arch,
            trace,
            generator.catalog,
            scheme_names=SCHEMES,
            cache_sizes=CACHE_SIZES,
            scheme_params={"modulo": {"radius": 4}},
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print("=" * 72)
    print("Extension E1: extended baseline family (en-route)")
    print("=" * 72)
    print(
        format_sweep_table(
            points, ["latency", "byte_hit_ratio", "hops", "cache_load"]
        )
    )

    for size in CACHE_SIZES:
        at_size = [p for p in points if p.relative_cache_size == size]
        latency = {p.scheme: p.summary.mean_latency for p in at_size}
        hit = {p.scheme: p.summary.byte_hit_ratio for p in at_size}
        hops = {p.scheme: p.summary.mean_hops for p in at_size}
        load = {p.scheme: p.summary.mean_cache_load for p in at_size}
        assert latency["coordinated"] == min(latency.values()), (size, latency)
        assert hops["coordinated"] == min(hops.values()), (size, hops)
        assert load["coordinated"] == min(load.values()), (size, load)
        # Raw byte hit ratio: within a few percent of the best baseline
        # (cache-everywhere LFU-family policies can edge it out while
        # losing every cost metric).
        assert hit["coordinated"] >= max(hit.values()) * 0.95, (size, hit)
