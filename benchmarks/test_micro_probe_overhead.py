"""Micro-benchmark: disabled instrumentation must be (nearly) free.

The obs layer's design contract is zero-overhead-when-off: a run with no
``Instruments`` bundle -- or with a bundle whose probe is disabled, which
the engine normalizes to the same thing -- must execute the exact
uninstrumented hot path.  The only residual cost is a handful of
``is not None`` checks per request, so engine throughput with a disabled
bundle must stay within 5% of the plain run.

Timing is interleaved min-of-N: each variant's best-of-five replay of
the same trace, alternating variants so drift (thermal, page cache)
hits both equally.
"""

from __future__ import annotations

import time

from repro.costs.model import LatencyCostModel
from repro.obs import Instruments, Probe
from repro.sim.architecture import build_hierarchical_architecture
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.factory import build_scheme
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig

ROUNDS = 5


def _setup():
    workload = WorkloadConfig(
        num_objects=200,
        num_servers=5,
        num_clients=20,
        num_requests=8_000,
        seed=5,
    )
    generator = BoeingLikeTraceGenerator(workload)
    trace = generator.generate()
    arch = build_hierarchical_architecture(
        workload.num_clients, workload.num_servers, seed=0
    )
    catalog = generator.catalog
    cost = LatencyCostModel(arch.network, catalog.mean_size)
    config = SimulationConfig(relative_cache_size=0.02)
    capacity = config.capacity_bytes(catalog.total_bytes)
    dentries = config.dcache_entries(catalog.total_bytes, catalog.mean_size)
    return arch, trace, cost, capacity, dentries


def test_micro_disabled_probe_overhead(benchmark):
    arch, trace, cost, capacity, dentries = _setup()

    def replay(instruments):
        scheme = build_scheme("coordinated", cost, capacity, dentries)
        engine = SimulationEngine(arch, cost, scheme, warmup_fraction=0.5)
        started = time.perf_counter()
        result = engine.run(trace, instruments=instruments)
        return time.perf_counter() - started, result.summary

    def disabled_bundle():
        return Instruments(probe=Probe(lambda e: None, enabled=False))

    def measure():
        replay(None)  # warm-up (page cache, allocator)
        plain_times, off_times = [], []
        baseline_summary = None
        for _ in range(ROUNDS):
            seconds, summary = replay(None)
            plain_times.append(seconds)
            baseline_summary = summary
            seconds, summary = replay(disabled_bundle())
            off_times.append(seconds)
            assert summary == baseline_summary  # bit-identical metrics
        return min(plain_times), min(off_times)

    def measure_with_retry():
        # A shared box can wobble more than the 5% budget between the
        # interleaved passes; re-measuring bounds the false-failure rate
        # without loosening the gate itself.
        best = None
        for attempt in range(3):
            plain, off = measure()
            overhead = off / plain - 1.0
            if best is None or overhead < best[2]:
                best = (plain, off, overhead)
            if overhead <= 0.05:
                break
        return best

    plain, off, overhead = benchmark.pedantic(
        measure_with_retry, rounds=1, iterations=1
    )
    print(
        f"\nplain {plain * 1e3:.1f} ms, disabled-instruments "
        f"{off * 1e3:.1f} ms ({overhead:+.2%} overhead)"
    )
    assert off <= plain * 1.05
