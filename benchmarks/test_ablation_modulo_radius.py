"""Ablation A1: MODULO cache-radius sensitivity (paper sections 4.1-4.2).

The paper reports that the best radius is configuration-dependent --
radius 4 wins under its en-route topology while any radius > 1 is harmful
under the hierarchical architecture (radius 1 degenerates to LRU).  This
bench sweeps the radius on both architectures and asserts the
architecture-dependent part of that claim: on the hierarchical tree,
radius 1 strictly beats radius 4.
"""

from __future__ import annotations

from repro.experiments.presets import build_architecture
from repro.experiments.sweeps import run_modulo_radius_sweep
from repro.experiments.tables import format_sweep_table

RADII = (1, 2, 3, 4, 5, 6)
CACHE_SIZE = 0.03


def _run(sweep_store, architecture_name):
    preset = sweep_store.preset()
    generator = preset.generator()
    trace = generator.generate()
    arch = build_architecture(architecture_name, preset.workload, seed=1)
    return run_modulo_radius_sweep(
        arch,
        trace,
        generator.catalog,
        radii=RADII,
        relative_cache_size=CACHE_SIZE,
    )


def test_ablation_modulo_radius(benchmark, sweep_store):
    def run_both():
        return {
            name: _run(sweep_store, name)
            for name in ("en-route", "hierarchical")
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print("=" * 72)
    print(f"Ablation A1: MODULO cache radius (cache size {CACHE_SIZE:.0%})")
    print("=" * 72)
    for name, points in results.items():
        print(format_sweep_table(points, ["latency", "byte_hit_ratio"], title=name))
        print()

    def latency_by_radius(points):
        return {
            int(p.scheme.split("r=")[1].rstrip(")")): p.summary.mean_latency
            for p in points
        }

    hier = latency_by_radius(results["hierarchical"])
    # Hierarchical: radius 1 (== LRU) must beat radius 4 (unused levels).
    assert hier[1] < hier[4]
    # And radius 4 is no better than any smaller radius.
    assert hier[4] >= min(hier[r] for r in (1, 2, 3))

    enroute = latency_by_radius(results["en-route"])
    # En-route: some radius > 1 is at least competitive with radius 1
    # (the paper found radius 4 best for its topology).
    assert min(enroute[r] for r in RADII if r > 1) <= enroute[1] * 1.10
