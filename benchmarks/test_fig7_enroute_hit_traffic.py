"""Figure 7: byte hit ratio and network traffic vs cache size (en-route).

Reuses the en-route sweep (computed by the Figure 6 bench when run
together; computed here when run alone).  Paper shapes asserted:

* coordinated achieves the highest byte hit ratio, with the relative
  advantage largest at small cache sizes (Fig. 7a);
* coordinated produces the lowest network traffic in byte x hops
  (Fig. 7b).
"""

from __future__ import annotations

from repro.experiments.tables import figure_series, format_sweep_table


def test_fig7_enroute_byte_hit_ratio_and_traffic(benchmark, sweep_store):
    points = sweep_store.sweep("en-route")
    tables = benchmark.pedantic(
        lambda: format_sweep_table(points, ["byte_hit_ratio", "traffic"]),
        rounds=1,
        iterations=1,
    )
    print()
    print("=" * 72)
    print("Figure 7: Byte Hit Ratio and Network Traffic vs Cache Size (En-Route)")
    print("=" * 72)
    print(tables)

    hit = figure_series(points, "byte_hit_ratio")
    schemes = {name.split("(")[0]: name for name in hit}
    for size_index in range(len(hit["coordinated"])):
        row = {s: hit[f][size_index][1] for s, f in schemes.items()}
        assert row["coordinated"] == max(row.values()), (size_index, row)

    # Relative byte-hit advantage over LRU shrinks as the cache grows.
    first_gain = hit["coordinated"][0][1] / max(hit[schemes["lru"]][0][1], 1e-9)
    last_gain = hit["coordinated"][-1][1] / max(hit[schemes["lru"]][-1][1], 1e-9)
    assert first_gain >= last_gain

    traffic = figure_series(points, "traffic")
    for size_index in range(len(traffic["coordinated"])):
        row = {s: traffic[f][size_index][1] for s, f in schemes.items()}
        assert row["coordinated"] == min(row.values()), (size_index, row)
