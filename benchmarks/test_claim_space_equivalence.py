"""Claim C1: LRU needs 3-10x the cache space of coordinated caching.

Paper section 4.1: "To achieve the same access latency, the schemes that
do not optimize placement decisions (LRU and LNC-R) would require 3 to
10 times the cache space of the coordinated scheme."  This bench inverts
the Figure 6 sweep: for each coordinated point, find (by log-space
interpolation of the LRU latency curve) the LRU cache size achieving the
same latency, and report the space multiplier.
"""

from __future__ import annotations

import math

from repro.experiments.tables import figure_series


def _interpolate_size_for_latency(series, target_latency):
    """Invert a (size, latency) curve: the size where latency == target.

    Latency decreases with size; interpolates linearly in (log size,
    latency).  Returns None when the target is outside the curve's range.
    """
    points = sorted(series)
    for (s1, l1), (s2, l2) in zip(points, points[1:]):
        lo, hi = min(l1, l2), max(l1, l2)
        if lo <= target_latency <= hi and l1 != l2:
            frac = (l1 - target_latency) / (l1 - l2)
            log_size = math.log(s1) + frac * (math.log(s2) - math.log(s1))
            return math.exp(log_size)
    return None


def test_claim_space_equivalence(benchmark, sweep_store):
    points = benchmark.pedantic(
        lambda: sweep_store.sweep("en-route"), rounds=1, iterations=1
    )
    latency = figure_series(points, "latency")
    coordinated = dict(latency["coordinated"])
    lru_series = latency[next(k for k in latency if k.startswith("lru"))]

    print()
    print("=" * 72)
    print("Claim C1: cache space LRU needs to match coordinated latency")
    print("(paper section 4.1: 3-10x)")
    print("=" * 72)
    multipliers = []
    for size, coord_latency in sorted(coordinated.items()):
        equivalent = _interpolate_size_for_latency(lru_series, coord_latency)
        if equivalent is None:
            print(f"coordinated @ {size:g}: LRU cannot match within the "
                  "swept range (needs > 10% cache)")
            continue
        multiplier = equivalent / size
        multipliers.append(multiplier)
        print(
            f"coordinated @ {size:g} (latency {coord_latency:.4f}) "
            f"== LRU @ {equivalent:.4f}  ->  {multiplier:.1f}x space"
        )

    assert multipliers, "no coordinated latency reachable by LRU in range"
    # The matched points need several times the space; at least one point
    # in the 3-10x band, and none below 1.5x.
    assert all(m > 1.5 for m in multipliers)
    assert any(3.0 <= m for m in multipliers)
