"""Ablation A3: hierarchical delay-growth robustness (paper section 3.2).

The paper tested "a wide range of d and g values and observed similar
trends in the relative performance of different caching schemes".  This
bench replays the hierarchical comparison for growth factors g in
{2, 5, 10} and asserts the ranking (coordinated < LRU; MODULO(4) > LRU)
holds at each.
"""

from __future__ import annotations

from repro.experiments.presets import build_architecture
from repro.experiments.sweeps import run_cache_size_sweep
from repro.experiments.tables import format_sweep_table
from repro.topology.tree import TreeConfig

GROWTH_FACTORS = (2.0, 5.0, 10.0)
CACHE_SIZE = 0.03


def test_ablation_tree_growth_factor(benchmark, sweep_store):
    preset = sweep_store.preset()
    generator = preset.generator()
    trace = generator.generate()
    catalog = generator.catalog

    def run_all():
        results = {}
        for g in GROWTH_FACTORS:
            arch = build_architecture(
                "hierarchical",
                preset.workload,
                seed=1,
                tree_config=TreeConfig(growth_factor=g),
            )
            results[g] = run_cache_size_sweep(
                arch,
                trace,
                catalog,
                scheme_names=("lru", "modulo", "coordinated"),
                cache_sizes=(CACHE_SIZE,),
                scheme_params={"modulo": {"radius": 4}},
            )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print("=" * 72)
    print(f"Ablation A3: tree delay growth factor g (cache {CACHE_SIZE:.0%})")
    print("=" * 72)
    for g, points in results.items():
        print(format_sweep_table(points, ["latency", "byte_hit_ratio"],
                                 title=f"g = {g}"))
        print()

    for g, points in results.items():
        latency = {p.scheme.split("(")[0]: p.summary.mean_latency for p in points}
        assert latency["coordinated"] < latency["lru"], (g, latency)
        assert latency["modulo"] > latency["lru"], (g, latency)
