"""Table 1: system parameters for the en-route architecture.

Regenerates the topology-characteristics table from our Tiers-like
generator and checks it against the paper's reported values (100 nodes,
50 WAN / 50 MAN, 173 links, WAN:MAN mean delay about 8:1, ~12-hop paths).
"""

from __future__ import annotations

from repro.experiments.presets import build_architecture
from repro.experiments.tables import format_table1, topology_characteristics
from repro.workload.generator import WorkloadConfig

_WORKLOAD = WorkloadConfig(
    num_objects=100, num_servers=50, num_clients=100, num_requests=10
)


def _build():
    arch = build_architecture("en-route", _WORKLOAD, seed=0)
    return topology_characteristics(arch)


def test_table1_system_parameters(benchmark):
    characteristics = benchmark.pedantic(_build, rounds=3, iterations=1)
    print()
    print("=" * 60)
    print("Table 1: System Parameters for En-Route Architecture")
    print("(paper: 100 nodes, 50 WAN, 50 MAN, 173 links,")
    print(" 0.146 s WAN / 0.018 s MAN delays, ~12-hop paths)")
    print("=" * 60)
    print(format_table1(characteristics))

    assert characteristics["total_nodes"] == 100
    assert characteristics["wan_nodes"] == 50
    assert characteristics["man_nodes"] == 50
    assert characteristics["links"] == 173
    assert abs(characteristics["avg_wan_link_delay"] - 0.146) < 0.015
    assert 4 <= characteristics["avg_path_hops"] <= 18
