"""Ablation A5: d-cache management policy (paper section 2.4).

The paper manages d-cache descriptors with "simple LFU" but notes they
can be organized into LRU stacks for O(1) maintenance.  This bench runs
the coordinated scheme under both policies and asserts the choice is not
load-bearing: the two differ by only a few percent in latency and byte
hit ratio, so the O(1) LRU organization is a safe engineering choice.
"""

from __future__ import annotations

from repro.experiments.presets import build_architecture
from repro.experiments.sweeps import run_single
from repro.sim.config import SimulationConfig

CACHE_SIZE = 0.03


def test_ablation_dcache_policy(benchmark, sweep_store):
    preset = sweep_store.preset()
    generator = preset.generator()
    trace = generator.generate()
    catalog = generator.catalog
    arch = build_architecture("en-route", preset.workload, seed=1)
    config = SimulationConfig(relative_cache_size=CACHE_SIZE)

    def run_both():
        return {
            policy: run_single(
                arch, trace, catalog, "coordinated", config,
                dcache_policy=policy,
            ).summary
            for policy in ("lfu", "lru")
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print("=" * 72)
    print(f"Ablation A5: d-cache policy (coordinated, cache {CACHE_SIZE:.0%})")
    print("=" * 72)
    print(f"{'policy':>6}  {'latency':>10}  {'byte_hit':>9}  {'hops':>6}")
    for policy, summary in results.items():
        print(
            f"{policy:>6}  {summary.mean_latency:>10.5f}  "
            f"{summary.byte_hit_ratio:>9.4f}  {summary.mean_hops:>6.3f}"
        )

    lfu, lru = results["lfu"], results["lru"]
    assert abs(lru.mean_latency - lfu.mean_latency) / lfu.mean_latency < 0.10
    assert abs(lru.byte_hit_ratio - lfu.byte_hit_ratio) < 0.05
