"""Extension E6: the coordination protocol's communication overhead.

Paper sections 2.3-2.4 argue that piggybacking (f, m, l) reports on
requests and decisions + a cost accumulator on responses costs little:
descriptors are "a few tens of bytes" versus kilobyte-scale objects, and
no extra messages are exchanged.  This bench quantifies that on a full
replay: protocol bytes as a fraction of object bytes moved through the
network (byte x hops) must be well under 1%.
"""

from __future__ import annotations

from repro.costs.model import LatencyCostModel
from repro.experiments.presets import build_architecture
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.factory import build_scheme

CACHE_SIZE = 0.03


def test_extension_protocol_overhead(benchmark, sweep_store):
    preset = sweep_store.preset()
    generator = preset.generator()
    trace = generator.generate()
    catalog = generator.catalog
    arch = build_architecture("en-route", preset.workload, seed=1)
    cost = LatencyCostModel(arch.network, catalog.mean_size)
    config = SimulationConfig(relative_cache_size=CACHE_SIZE)
    capacity = config.capacity_bytes(catalog.total_bytes)
    dentries = config.dcache_entries(catalog.total_bytes, catalog.mean_size)

    def run():
        scheme = build_scheme("coordinated", cost, capacity, dentries)
        result = SimulationEngine(
            arch, cost, scheme, warmup_fraction=0.0
        ).run(trace)
        return scheme, result

    scheme, result = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = scheme.protocol_stats
    overhead = stats.overhead_bytes()
    object_byte_hops = result.summary.mean_traffic_byte_hops * result.summary.requests
    ratio = overhead / object_byte_hops

    print()
    print("=" * 72)
    print("Extension E6: coordination protocol overhead (en-route, full trace)")
    print("=" * 72)
    print(f"requests                  {stats.requests}")
    print(f"piggybacked reports       {stats.reports}")
    print(f"no-descriptor tags        {stats.no_descriptor_tags}")
    print(f"placement decisions       {stats.decisions}")
    print(f"responses w/ accumulator  {stats.responses_with_accumulator}")
    print(f"protocol bytes            {overhead}")
    print(f"object byte-hops          {object_byte_hops:.3e}")
    print(f"overhead ratio            {ratio:.5%}")

    assert stats.requests == result.summary.requests
    assert ratio < 0.01  # well under 1%, as the paper argues
    # Reports per request stay bounded by the path length.
    assert stats.reports / stats.requests < 13
