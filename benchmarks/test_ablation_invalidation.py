"""Ablation A7: robustness to object updates (coherency extension).

The paper assumes read-mostly objects kept fresh by a coherency protocol
(section 2).  This bench injects Poisson server-side updates that
invalidate every cached copy and checks the paper's conclusion survives
the stress: the coordinated scheme still beats LRU in latency and byte
hit ratio under moderate update rates, degrading gracefully as churn
rises.
"""

from __future__ import annotations

from repro.costs.model import LatencyCostModel
from repro.experiments.presets import build_architecture
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.factory import build_scheme
from repro.workload.updates import generate_update_events

CACHE_SIZE = 0.03
UPDATE_RATES = (0.0, 1.0, 5.0)  # aggregate updates per second


def test_ablation_invalidation_churn(benchmark, sweep_store):
    preset = sweep_store.preset()
    generator = preset.generator()
    trace = generator.generate()
    catalog = generator.catalog
    arch = build_architecture("en-route", preset.workload, seed=1)
    cost = LatencyCostModel(arch.network, catalog.mean_size)
    config = SimulationConfig(relative_cache_size=CACHE_SIZE)
    capacity = config.capacity_bytes(catalog.total_bytes)
    dentries = config.dcache_entries(catalog.total_bytes, catalog.mean_size)

    def run_all():
        results = {}
        for rate in UPDATE_RATES:
            updates = generate_update_events(
                preset.workload.num_objects, trace.duration, rate, seed=2
            )
            for name in ("lru", "coordinated"):
                scheme = build_scheme(name, cost, capacity, dentries)
                result = SimulationEngine(arch, cost, scheme).run(
                    trace, updates=updates
                )
                results[(rate, name)] = result
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print("=" * 72)
    print(f"Ablation A7: update churn (cache {CACHE_SIZE:.0%})")
    print("=" * 72)
    print(
        f"{'rate':>5} {'scheme':<12} {'latency':>9} {'byte_hit':>9} "
        f"{'invalidated':>11}"
    )
    for (rate, name), result in results.items():
        s = result.summary
        print(
            f"{rate:>5} {name:<12} {s.mean_latency:>9.4f} "
            f"{s.byte_hit_ratio:>9.4f} {result.copies_invalidated:>11}"
        )

    for rate in UPDATE_RATES:
        coord = results[(rate, "coordinated")].summary
        lru = results[(rate, "lru")].summary
        assert coord.mean_latency < lru.mean_latency, rate
        assert coord.byte_hit_ratio > lru.byte_hit_ratio, rate

    # Churn degrades the coordinated scheme gracefully, not cliff-like.
    quiet = results[(0.0, "coordinated")].summary.byte_hit_ratio
    stressed = results[(UPDATE_RATES[-1], "coordinated")].summary.byte_hit_ratio
    assert stressed <= quiet
    assert stressed > 0.2 * quiet
