"""Micro-benchmark: the columnar fast path must actually be fast.

The batched kernels in :mod:`repro.sim.fastpath` exist for one reason --
throughput -- and they buy it under a bit-exactness contract (identical
results to the reference loop; :mod:`tests.test_sim_columnar` and
``scripts/_diff_fastpath.py`` hold them to it).  This gate catches the
silent failure mode the tests cannot: an edit that keeps the kernels
correct but quietly drops them back to per-request speed, e.g. by
breaking an eligibility check so ``run_columnar`` routes everything
through the generic loop.

The floor is deliberately conservative (2x, against measured ~4-9x on
the gated schemes, see BENCH_sim.json) so shared-box timing wobble does
not flake the gate; the committed-baseline ratio check in
``scripts/bench_sim.py --quick --check`` is the tight version.

Timing is interleaved min-of-N, same as the probe-overhead gate:
alternate reference and fast replays so drift hits both equally.
"""

from __future__ import annotations

import time

import pytest

from repro.costs.model import LatencyCostModel
from repro.sim.architecture import build_hierarchical_architecture
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.factory import build_scheme
from repro.workload.generator import BoeingLikeTraceGenerator, WorkloadConfig

ROUNDS = 5
MIN_SPEEDUP = 2.0


def _setup():
    workload = WorkloadConfig(
        num_objects=200,
        num_servers=5,
        num_clients=20,
        num_requests=8_000,
        seed=5,
    )
    generator = BoeingLikeTraceGenerator(workload)
    trace = generator.generate()
    columnar = generator.generate_columnar()
    arch = build_hierarchical_architecture(
        workload.num_clients, workload.num_servers, seed=0
    )
    catalog = generator.catalog
    cost = LatencyCostModel(arch.network, catalog.mean_size)
    config = SimulationConfig(relative_cache_size=0.02)
    capacity = config.capacity_bytes(catalog.total_bytes)
    dentries = config.dcache_entries(catalog.total_bytes, catalog.mean_size)
    return arch, trace, columnar, cost, capacity, dentries


@pytest.mark.parametrize("scheme_name", ["lru", "coordinated"])
def test_micro_fastpath_speedup(benchmark, scheme_name):
    arch, trace, columnar, cost, capacity, dentries = _setup()

    def replay(input_trace):
        scheme = build_scheme(scheme_name, cost, capacity, dentries)
        engine = SimulationEngine(arch, cost, scheme, warmup_fraction=0.5)
        started = time.perf_counter()
        result = engine.run(input_trace)
        return time.perf_counter() - started, result.summary

    def measure():
        replay(columnar)  # warm-up (page cache, allocator)
        ref_times, fast_times = [], []
        for _ in range(ROUNDS):
            seconds, ref_summary = replay(trace)
            ref_times.append(seconds)
            seconds, fast_summary = replay(columnar)
            fast_times.append(seconds)
            assert fast_summary == ref_summary  # bit-identical metrics
        return min(ref_times), min(fast_times)

    def measure_with_retry():
        best = None
        for _ in range(3):
            ref, fast = measure()
            speedup = ref / fast
            if best is None or speedup > best[2]:
                best = (ref, fast, speedup)
            if speedup >= MIN_SPEEDUP:
                break
        return best

    ref, fast, speedup = benchmark.pedantic(
        measure_with_retry, rounds=1, iterations=1
    )
    print(
        f"\n{scheme_name}: reference {ref * 1e3:.1f} ms, "
        f"fast {fast * 1e3:.1f} ms ({speedup:.2f}x)"
    )
    assert speedup >= MIN_SPEEDUP
