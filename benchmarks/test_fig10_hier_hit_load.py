"""Figure 10: byte hit ratio and cache load vs cache size (hierarchical).

Paper shapes asserted:

* coordinated achieves the highest byte hit ratio (Fig. 10a);
* MODULO(r=4) shows a much lower byte hit ratio than LRU (unused cache
  levels);
* coordinated generally has the lowest total read/write load (Fig. 10b).
"""

from __future__ import annotations

from repro.experiments.tables import figure_series, format_sweep_table


def test_fig10_hier_byte_hit_ratio_and_cache_load(benchmark, sweep_store):
    points = sweep_store.sweep("hierarchical")
    tables = benchmark.pedantic(
        lambda: format_sweep_table(
            points, ["byte_hit_ratio", "cache_load", "read_load", "write_load"]
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print("=" * 72)
    print("Figure 10: Byte Hit Ratio and Cache Load vs Cache Size (Hierarchical)")
    print("=" * 72)
    print(tables)

    hit = figure_series(points, "byte_hit_ratio")
    schemes = {name.split("(")[0]: name for name in hit}
    for size_index in range(len(hit["coordinated"])):
        row = {s: hit[f][size_index][1] for s, f in schemes.items()}
        assert row["coordinated"] == max(row.values()), (size_index, row)
        assert row["modulo"] < row["lru"], (size_index, row)

    load = figure_series(points, "cache_load")
    for size_index in range(len(load["coordinated"])):
        row = {s: load[f][size_index][1] for s, f in schemes.items()}
        assert row["coordinated"] == min(row.values()), (size_index, row)
