"""Micro-benchmark: the k-optimization dynamic program itself.

Paper section 2.4 argues the DP's O(k^2) cost is negligible because k (the
number of candidate caches on a path) stays small.  This bench measures
the solver at the paper's realistic path length (the en-route topology
averages ~12 hops) and checks it stays in the microsecond range, and that
cost grows roughly quadratically (a 4x n gives <= ~30x time, allowing
constant overheads).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.placement import PlacementProblem, solve_placement


def _problem(n: int, seed: int = 0) -> PlacementProblem:
    rng = np.random.default_rng(seed)
    freqs = np.sort(rng.random(n))[::-1] * 10
    penalties = rng.random(n) * 2
    losses = rng.random(n)
    return PlacementProblem(
        tuple(freqs.tolist()), tuple(penalties.tolist()), tuple(losses.tolist())
    )


def test_micro_dp_at_path_length_12(benchmark):
    problem = _problem(12)
    solution = benchmark(solve_placement, problem)
    assert solution.gain >= 0.0
    # Sub-100us per decision leaves the DP negligible per request.
    assert benchmark.stats["mean"] < 1e-4


def test_micro_dp_quadratic_scaling(benchmark):
    def measure(n: int) -> float:
        problem = _problem(n)
        solve_placement(problem)  # warm-up
        start = time.perf_counter()
        rounds = 200
        for _ in range(rounds):
            solve_placement(problem)
        return (time.perf_counter() - start) / rounds

    t12, t48 = benchmark.pedantic(
        lambda: (measure(12), measure(48)), rounds=1, iterations=1
    )
    print(f"\nDP solve: n=12 -> {t12 * 1e6:.1f} us, n=48 -> {t48 * 1e6:.1f} us")
    # O(n^2): 4x n => ~16x work; allow generous slack for noise.
    assert t48 / t12 < 40
