"""Figure 9: access latency and response ratio vs cache size (hierarchical).

This bench owns the hierarchical sweep (Figure 10 reuses its points).
Paper shapes asserted:

* coordinated has the lowest latency and response ratio everywhere;
* MODULO with radius 4 performs much worse than LRU under the
  hierarchical architecture (levels 1-3 go unused, section 4.2) --
  the opposite of the en-route ranking.
"""

from __future__ import annotations

from repro.experiments.charts import render_figure
from repro.experiments.tables import figure_series, format_sweep_table


def test_fig9_hier_latency_and_response_ratio(benchmark, sweep_store):
    points = benchmark.pedantic(
        lambda: sweep_store.sweep("hierarchical"), rounds=1, iterations=1
    )
    print()
    print("=" * 72)
    print("Figure 9: Access Latency and Response Ratio vs Cache Size (Hierarchical)")
    print("=" * 72)
    print(format_sweep_table(points, ["latency", "response_ratio"]))
    print()
    print(render_figure(points, "latency", title="Figure 9(a), rendered:"))

    latency = figure_series(points, "latency")
    schemes = {name.split("(")[0]: name for name in latency}

    for size_index in range(len(latency["coordinated"])):
        row = {s: latency[f][size_index][1] for s, f in schemes.items()}
        assert row["coordinated"] == min(row.values()), (size_index, row)
        # The hierarchical blind spot: MODULO(r=4) trails LRU.
        assert row["modulo"] > row["lru"], (size_index, row)

    response = figure_series(points, "response_ratio")
    for size_index in range(len(response["coordinated"])):
        row = {s: response[f][size_index][1] for s, f in schemes.items()}
        assert row["coordinated"] == min(row.values()), (size_index, row)
