"""Extension E5: where should a fixed cache budget live in a hierarchy?

The paper sizes every cache equally (section 3.2).  This ablation holds
the *total* installed capacity fixed and redistributes it across tree
levels -- uniform, leaf-heavy, and root-heavy -- under the coordinated
scheme.

Expected shape (dictated by the paper's delay model): link delay grows
exponentially towards the root (``g**level * d`` with g = 5), so the
root cache both aggregates every client's demand and shields the single
most expensive link (root-to-origin, ``g**3 * d``).  A fixed budget is
therefore best spent high up: root-heavy < uniform < leaf-heavy in
latency.  Leaf-heavy splits the budget 27 ways across caches that each
see 1/27 of the demand and only save cheap leaf links.
"""

from __future__ import annotations

from repro.costs.model import LatencyCostModel
from repro.experiments.presets import build_architecture
from repro.sim.architecture import level_capacity_overrides
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.factory import build_scheme

CACHE_SIZE = 0.03

DISTRIBUTIONS = {
    "uniform": {},
    "leaf-heavy": {0: 4.0},
    "root-heavy": {3: 16.0},
}


def test_ablation_capacity_distribution(benchmark, sweep_store):
    preset = sweep_store.preset()
    generator = preset.generator()
    trace = generator.generate()
    catalog = generator.catalog
    arch = build_architecture("hierarchical", preset.workload, seed=1)
    cost = LatencyCostModel(arch.network, catalog.mean_size)
    config = SimulationConfig(relative_cache_size=CACHE_SIZE)
    base_capacity = config.capacity_bytes(catalog.total_bytes)
    dentries = config.dcache_entries(catalog.total_bytes, catalog.mean_size)

    def run_all():
        results = {}
        for label, multipliers in DISTRIBUTIONS.items():
            overrides = level_capacity_overrides(
                arch.network, base_capacity, multipliers
            )
            scheme = build_scheme(
                "coordinated", cost, base_capacity, dentries,
                capacity_overrides=overrides,
            )
            results[label] = SimulationEngine(arch, cost, scheme).run(trace)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print("=" * 72)
    print(
        "Extension E5: capacity distribution across tree levels "
        f"(fixed budget, base {CACHE_SIZE:.0%})"
    )
    print("=" * 72)
    for label, result in results.items():
        s = result.summary
        print(
            f"{label:<11} latency={s.mean_latency:.4f} "
            f"byte_hit={s.byte_hit_ratio:.4f} hops={s.mean_hops:.3f}"
        )

    latencies = {k: r.summary.mean_latency for k, r in results.items()}
    assert latencies["root-heavy"] < latencies["uniform"] < latencies["leaf-heavy"]
    hits = {k: r.summary.byte_hit_ratio for k, r in results.items()}
    assert hits["root-heavy"] > hits["uniform"] > hits["leaf-heavy"]
