"""Figure 8: hops traveled and cache read/write load vs cache size (en-route).

Paper shapes asserted:

* requests travel the fewest hops under coordinated caching (Fig. 8a);
* coordinated has the lowest aggregate read/write load, with LRU and
  LNC-R several times higher (the paper reports 3-24x) because they write
  at every node on every delivery path (Fig. 8b);
* reads dominate coordinated's load (the paper reports 75-80% read share).
"""

from __future__ import annotations

from repro.experiments.tables import figure_series, format_sweep_table


def test_fig8_enroute_hops_and_cache_load(benchmark, sweep_store):
    points = sweep_store.sweep("en-route")
    tables = benchmark.pedantic(
        lambda: format_sweep_table(
            points, ["hops", "cache_load", "read_load", "write_load"]
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print("=" * 72)
    print("Figure 8: Hops Traveled and Cache Load vs Cache Size (En-Route)")
    print("=" * 72)
    print(tables)

    hops = figure_series(points, "hops")
    schemes = {name.split("(")[0]: name for name in hops}
    for size_index in range(len(hops["coordinated"])):
        row = {s: hops[f][size_index][1] for s, f in schemes.items()}
        assert row["coordinated"] == min(row.values()), (size_index, row)

    load = figure_series(points, "cache_load")
    for size_index in range(len(load["coordinated"])):
        row = {s: load[f][size_index][1] for s, f in schemes.items()}
        assert row["coordinated"] == min(row.values()), (size_index, row)
        # LRU load is several times coordinated's.
        assert row["lru"] / row["coordinated"] > 3.0, (size_index, row)

    # Read load dominates coordinated caching's total load.
    reads = figure_series(points, "read_load")["coordinated"]
    writes = figure_series(points, "write_load")["coordinated"]
    for (_, read), (_, write) in zip(reads, writes):
        assert read > write
