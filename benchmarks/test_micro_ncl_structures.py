"""Micro-benchmark M2: NCL bookkeeping structures (paper section 2.4).

Compares the default bisect-list NCL cache against the paper's suggested
heap organization, end to end: the same coordinated run executed with
each structure must produce *identical metrics* (they are policy-
equivalent by construction and by property test) while differing only in
constant factors.  The printed timings quantify the engineering trade.
"""

from __future__ import annotations

import time

from repro.costs.model import LatencyCostModel
from repro.experiments.presets import build_architecture
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.factory import build_scheme

CACHE_SIZE = 0.03


def test_micro_ncl_structures(benchmark, sweep_store):
    preset = sweep_store.preset()
    generator = preset.generator()
    trace = generator.generate()
    catalog = generator.catalog
    arch = build_architecture("en-route", preset.workload, seed=1)
    cost = LatencyCostModel(arch.network, catalog.mean_size)
    config = SimulationConfig(relative_cache_size=CACHE_SIZE)
    capacity = config.capacity_bytes(catalog.total_bytes)
    dentries = config.dcache_entries(catalog.total_bytes, catalog.mean_size)

    def run_both():
        results = {}
        for structure in ("list", "heap"):
            scheme = build_scheme(
                "coordinated", cost, capacity, dentries, ncl_structure=structure
            )
            start = time.perf_counter()
            result = SimulationEngine(arch, cost, scheme).run(trace)
            results[structure] = (result.summary, time.perf_counter() - start)
        return results

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print("=" * 72)
    print("Micro M2: NCL structure (coordinated scheme, full replay)")
    print("=" * 72)
    for structure, (summary, elapsed) in results.items():
        print(
            f"{structure:<5} replay={elapsed:.2f}s "
            f"latency={summary.mean_latency:.5f} "
            f"byte_hit={summary.byte_hit_ratio:.5f}"
        )

    list_summary, _ = results["list"]
    heap_summary, _ = results["heap"]
    assert list_summary == heap_summary  # policy-identical results
