"""Robustness R1: the headline comparison across seeds.

The paper replayed five daily traces and many random topologies and
reports the same relative trends everywhere (sections 3.1-3.2, 4).  This
bench re-runs the en-route comparison over several seeds -- each seed
gives a fresh trace, a fresh Tiers topology and fresh attachments -- and
asserts the coordinated scheme wins on latency in every single one.
"""

from __future__ import annotations

from repro.experiments.robustness import run_robustness

SEEDS = (1, 2, 3, 4, 5)
CACHE_SIZE = 0.03


def test_robustness_across_seeds(benchmark, sweep_store):
    preset = sweep_store.preset()

    result = benchmark.pedantic(
        lambda: run_robustness(
            preset,
            "en-route",
            scheme_names=("lru", "lnc-r", "coordinated"),
            seeds=SEEDS,
            relative_cache_size=CACHE_SIZE,
            scheme_params={"modulo": {"radius": 4}},
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print("=" * 72)
    print(f"Robustness R1: latency across {len(SEEDS)} seeds (cache {CACHE_SIZE:.0%})")
    print("=" * 72)
    print(result.format_table())
    print(
        f"coordinated beats lru in {result.wins('coordinated', 'lru')}/"
        f"{result.num_seeds} seeds, "
        f"lnc-r in {result.wins('coordinated', 'lnc-r')}/{result.num_seeds}"
    )

    assert result.wins("coordinated", "lru") == len(SEEDS)
    assert result.wins("coordinated", "lnc-r") == len(SEEDS)
    # Mean improvement over LRU is substantial, not marginal.
    assert result.mean("coordinated") < 0.9 * result.mean("lru")
