"""Shared state for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints the corresponding rows (run pytest with ``-s`` or check the
captured output).  The en-route figures 6-8 come from a single sweep and
the hierarchical figures 9-10 from another; a session-scoped store makes
sure each sweep runs exactly once even though three bench files consume
it.  The file whose benchmark *computes* a sweep is the one that owns its
timing (Figure 6 for en-route, Figure 9 for hierarchical); downstream
figures benchmark their tabulation against the cached points.

Scale: the ``small`` preset (12k requests, 500 objects) keeps the full
harness under a few minutes while preserving every relative-performance
shape; pass ``--cascade-scale=standard`` for the 60k-request version.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import pytest

from repro.experiments.presets import SMALL_SCALE, STANDARD_SCALE, build_architecture
from repro.experiments.sweeps import SweepPoint, run_cache_size_sweep

# Relative cache sizes used by all figure benches.  The paper sweeps
# 0.1%..10%; at bench scale (500 objects) 0.1% caches hold less than one
# average object, so the grid starts at 0.3%.
BENCH_CACHE_SIZES = (0.003, 0.01, 0.03, 0.1)
BENCH_SCHEMES = ("lru", "modulo", "lnc-r", "coordinated")
BENCH_SEED = 1


_FIGURE_REPORTS: list = []


@pytest.fixture(autouse=True)
def _collect_figure_tables(capsys, request):
    """Re-emit each bench's printed tables in the terminal summary.

    The tables ARE the reproduced figures; pytest's capture would hide
    them unless ``-s`` is passed, so this fixture harvests the captured
    stdout of every bench and :func:`pytest_terminal_summary` replays it
    after the timing table.
    """
    yield
    out = capsys.readouterr().out
    if out.strip():
        _FIGURE_REPORTS.append((request.node.name, out))


def pytest_terminal_summary(terminalreporter):
    if not _FIGURE_REPORTS:
        return
    terminalreporter.write_sep("=", "reproduced tables and figures")
    for name, out in _FIGURE_REPORTS:
        terminalreporter.write_sep("-", name)
        terminalreporter.write(out)


def pytest_addoption(parser):
    parser.addoption(
        "--cascade-scale",
        action="store",
        default="small",
        choices=("small", "standard"),
        help="workload scale for figure benchmarks",
    )


class _SweepStore:
    """Lazily computed, session-shared sweep results."""

    def __init__(self) -> None:
        self._data: Dict[str, List[SweepPoint]] = {}
        self.scale_name = "small"

    def preset(self):
        scale = SMALL_SCALE if self.scale_name == "small" else STANDARD_SCALE
        return scale.with_seed(BENCH_SEED)

    def ensure(self, key: str, factory: Callable[[], List[SweepPoint]]):
        if key not in self._data:
            self._data[key] = factory()
        return self._data[key]

    def sweep(self, architecture_name: str) -> List[SweepPoint]:
        """The standard 4-scheme cache-size sweep for one architecture."""
        return self.ensure(
            architecture_name, lambda: self._run(architecture_name)
        )

    def _run(self, architecture_name: str) -> List[SweepPoint]:
        preset = self.preset()
        generator = preset.generator()
        trace = generator.generate()
        arch = build_architecture(
            architecture_name, preset.workload, seed=BENCH_SEED
        )
        return run_cache_size_sweep(
            arch,
            trace,
            generator.catalog,
            scheme_names=BENCH_SCHEMES,
            cache_sizes=BENCH_CACHE_SIZES,
            scheme_params={"modulo": {"radius": 4}},
        )


_STORE = _SweepStore()


@pytest.fixture(scope="session")
def sweep_store(request) -> _SweepStore:
    _STORE.scale_name = request.config.getoption("--cascade-scale")
    return _STORE
