"""Figure 6: access latency and response ratio vs cache size (en-route).

This bench owns the en-route sweep (Figures 7 and 8 reuse its cached
points).  Paper shapes asserted:

* the coordinated scheme has the lowest latency and response ratio at
  every cache size (Figs. 6a/6b);
* LNC-R performs about like (or worse than) LRU;
* all schemes improve as the cache grows.
"""

from __future__ import annotations

from repro.experiments.charts import render_figure
from repro.experiments.tables import figure_series, format_sweep_table


def test_fig6_enroute_latency_and_response_ratio(benchmark, sweep_store):
    points = benchmark.pedantic(
        lambda: sweep_store.sweep("en-route"), rounds=1, iterations=1
    )
    print()
    print("=" * 72)
    print("Figure 6: Access Latency and Response Ratio vs Cache Size (En-Route)")
    print("=" * 72)
    print(format_sweep_table(points, ["latency", "response_ratio"]))
    print()
    print(render_figure(points, "latency", title="Figure 6(a), rendered:"))

    latency = figure_series(points, "latency")
    schemes = {name.split("(")[0]: name for name in latency}

    for size_index in range(len(latency["coordinated"])):
        row = {
            short: latency[full][size_index][1]
            for short, full in schemes.items()
        }
        assert row["coordinated"] == min(row.values()), (size_index, row)

    response = figure_series(points, "response_ratio")
    for size_index in range(len(response["coordinated"])):
        row = {
            short: response[full][size_index][1]
            for short, full in schemes.items()
        }
        assert row["coordinated"] == min(row.values()), (size_index, row)

    # Latency decreases (weakly) with cache size for every scheme.
    for series in latency.values():
        assert series[0][1] >= series[-1][1]
